// Loopback integration test: a real rsse server on an ephemeral TCP port,
// a real client, and the acceptance contract of the batched protocol — a
// SearchBatch of overlapping ranges returns exactly the per-query results
// of ConstantScheme while expanding each deduped covering node once.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generators.h"
#include "rsse/constant.h"
#include "server/client.h"
#include "server/server.h"
#include "sse/emm_codec.h"
#include "sse/keyword_keys.h"

namespace rsse::server {
namespace {

/// Server on an ephemeral loopback port, serving on a background thread.
class LoopbackServer {
 public:
  explicit LoopbackServer(ServerOptions options = {}) : server_(options) {
    Status s = server_.Listen();
    EXPECT_TRUE(s.ok()) << s.ToString();
    thread_ = std::thread([this] {
      Status serve = server_.Serve();
      EXPECT_TRUE(serve.ok()) << serve.ToString();
    });
  }

  ~LoopbackServer() {
    server_.Shutdown();
    thread_.join();
  }

  uint16_t port() const { return server_.port(); }
  EmmServer& server() { return server_; }

 private:
  EmmServer server_;
  std::thread thread_;
};

std::vector<uint64_t> Sorted(std::vector<uint64_t> ids) {
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST(ServerLoopbackTest, BatchedSearchMatchesPerQueryConstantScheme) {
  // Owner side: Constant-BRC over a skew-free dataset, 4-shard index.
  Rng rng(7);
  Dataset data = GenerateUniform(/*n=*/4000, /*domain_size=*/1 << 12, rng);
  ConstantScheme scheme(CoverTechnique::kBrc, /*rng_seed=*/3);
  scheme.SetShards(4);
  ASSERT_TRUE(scheme.Build(data).ok());

  // Nine overlapping ranges (including an exact duplicate and aligned
  // subranges), so covers share dyadic nodes across queries.
  std::vector<Range> ranges = {
      {0, 1023},    {0, 1023},                     // duplicates: full dedupe
      {0, 511},     {512, 1023},                   // aligned halves of the 1st
      {256, 1279},  {100, 900},  {700, 1500},      // overlapping, unaligned
      {2048, 2048}, {4000, 4095},
  };
  ASSERT_GE(ranges.size(), 8u);

  // Expected: per-query in-process protocol runs.
  std::vector<std::vector<uint64_t>> expected;
  std::set<std::pair<int, Bytes>> distinct_cover_nodes;
  size_t total_tokens = 0;
  for (const Range& r : ranges) {
    Result<QueryResult> q = scheme.Query(r);
    ASSERT_TRUE(q.ok());
    expected.push_back(Sorted(q->ids));
    for (const GgmDprf::Token& t : scheme.Delegate(r)) {
      distinct_cover_nodes.insert({t.level, t.seed});
      ++total_tokens;
    }
  }
  ASSERT_LT(distinct_cover_nodes.size(), total_tokens)
      << "test ranges must share covering nodes for the dedupe assertion";

  LoopbackServer loopback([] {
    ServerOptions options;
    options.search_threads = 4;
    return options;
  }());
  EmmClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", loopback.port()).ok());

  // Ship the index and issue the whole workload as ONE batched round trip.
  auto setup = client.Setup(scheme.SerializeIndex());
  ASSERT_TRUE(setup.ok()) << setup.status().ToString();
  EXPECT_EQ(setup->shards, 4u);
  EXPECT_EQ(setup->entries, scheme.index().EntryCount());

  std::vector<EmmClient::BatchQuery> batch;
  for (size_t i = 0; i < ranges.size(); ++i) {
    EmmClient::BatchQuery q;
    q.query_id = static_cast<uint32_t>(i * 10 + 1);  // non-contiguous ids
    q.tokens = scheme.Delegate(ranges[i]);
    batch.push_back(std::move(q));
  }
  auto outcome = client.SearchBatch(batch);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();

  // Exactness: every query's id multiset matches the in-process protocol.
  ASSERT_EQ(outcome->done.query_count, ranges.size());
  for (size_t i = 0; i < ranges.size(); ++i) {
    const uint32_t id = static_cast<uint32_t>(i * 10 + 1);
    ASSERT_TRUE(outcome->ids.count(id)) << "missing result for query " << id;
    EXPECT_EQ(Sorted(outcome->ids[id]), expected[i])
        << "range [" << ranges[i].lo << ", " << ranges[i].hi << "]";
  }

  // Dedupe: each distinct covering node expanded exactly once, and fewer
  // expansions than tokens shipped (the ranges overlap).
  EXPECT_EQ(outcome->done.tokens_received, total_tokens);
  EXPECT_EQ(outcome->done.unique_nodes_expanded, distinct_cover_nodes.size());
  EXPECT_LT(outcome->done.unique_nodes_expanded,
            outcome->done.tokens_received);

  // Server-side cumulative stats agree.
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->batches_served, 1u);
  EXPECT_EQ(stats->queries_served, ranges.size());
  EXPECT_EQ(stats->tokens_received, total_tokens);
  EXPECT_EQ(stats->nodes_deduped,
            total_tokens - distinct_cover_nodes.size());
  EXPECT_EQ(stats->shards, 4u);
  EXPECT_EQ(stats->entries, scheme.index().EntryCount());
}

TEST(ServerLoopbackTest, SearchBeforeSetupReportsError) {
  LoopbackServer loopback;
  EmmClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", loopback.port()).ok());
  std::vector<EmmClient::BatchQuery> batch(1);
  batch[0].query_id = 1;
  auto outcome = client.SearchBatch(batch);
  EXPECT_FALSE(outcome.ok());
  EXPECT_NE(outcome.status().message().find("no index hosted"),
            std::string::npos);
}

TEST(ServerLoopbackTest, UpdateInsertsSearchableEntries) {
  LoopbackServer loopback;
  EmmClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", loopback.port()).ok());

  // Owner: encrypt one keyword's postings into raw codec entries and ship
  // them through Update; then search them through the batch path... the
  // batch path needs DPRF tokens, so verify via a second Update + Stats
  // and the in-process search of a mirrored store instead.
  sse::PrfKeyDeriver deriver(Bytes(kLabelBytes, 0x66));
  std::vector<std::pair<Label, Bytes>> entries;
  sse::EmmBuildScratch scratch;
  std::vector<Bytes> payloads = {sse::EncodeIdPayload(1),
                                 sse::EncodeIdPayload(2)};
  ASSERT_TRUE(sse::EncryptKeywordEntries(
                  ToBytes("w"), payloads, deriver, /*pad_quantum=*/0, scratch,
                  [&entries](const Label& label, size_t len) {
                    entries.emplace_back(label, Bytes(len));
                    return ByteSpan(entries.back().second.data(), len);
                  })
                  .ok());
  auto update = client.Update(entries);
  ASSERT_TRUE(update.ok()) << update.status().ToString();
  EXPECT_EQ(update->entries, entries.size());

  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->entries, entries.size());
}

TEST(ServerLoopbackTest, OversizedTokenLevelIsRejectedNotExpanded) {
  // The wire format allows levels up to 62 (a 2^62-leaf expansion); the
  // server must reject anything past its configured cap instead of
  // attempting the allocation.
  LoopbackServer loopback;
  EmmClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", loopback.port()).ok());

  // Host a tiny store so the batch reaches the expansion path.
  std::vector<std::pair<Label, Bytes>> entries;
  Label label;
  label.fill(0x42);
  entries.emplace_back(label, Bytes(32, 0x01));
  ASSERT_TRUE(client.Update(entries).ok());

  EmmClient::BatchQuery query;
  query.query_id = 1;
  GgmDprf::Token huge;
  huge.seed = Bytes(kLabelBytes, 0x07);
  huge.level = 40;  // wire-legal, far past the default cap of 26
  query.tokens.push_back(huge);
  auto outcome = client.SearchBatch({query});
  ASSERT_FALSE(outcome.ok());
  EXPECT_NE(outcome.status().message().find("expansion limit"),
            std::string::npos);
}

TEST(ServerLoopbackTest, UpdateRacingSearchBatchIsWellDefined) {
  // Two connections hammer the server concurrently: one streams Update
  // batches while the other runs SearchBatch queries. The store table's
  // reader/writer lock must keep every search consistent (the inserted
  // labels are random, so search results never change) and every update
  // counted exactly once.
  Rng rng(11);
  Dataset data = GenerateUniform(/*n=*/2000, /*domain_size=*/1 << 10, rng);
  ConstantScheme scheme(CoverTechnique::kBrc, /*rng_seed=*/3);
  ASSERT_TRUE(scheme.Build(data).ok());

  LoopbackServer loopback([] {
    ServerOptions options;
    options.search_threads = 2;
    return options;
  }());
  {
    EmmClient setup_client;
    ASSERT_TRUE(setup_client.Connect("127.0.0.1", loopback.port()).ok());
    ASSERT_TRUE(setup_client.Setup(scheme.SerializeIndex()).ok());
  }
  const size_t base_entries = scheme.index().EntryCount();

  const Range range{100, 900};
  Result<QueryResult> expected = scheme.Query(range);
  ASSERT_TRUE(expected.ok());
  std::vector<uint64_t> expected_ids = Sorted(expected->ids);

  constexpr int kUpdateBatches = 40;
  constexpr int kEntriesPerBatch = 8;
  constexpr int kSearches = 40;
  std::atomic<int> failures{0};

  std::thread updater([&] {
    EmmClient client;
    if (!client.Connect("127.0.0.1", loopback.port()).ok()) {
      failures.fetch_add(1);
      return;
    }
    Rng label_rng(77);
    for (int b = 0; b < kUpdateBatches; ++b) {
      std::vector<std::pair<Label, Bytes>> entries;
      for (int i = 0; i < kEntriesPerBatch; ++i) {
        Label label;
        for (uint8_t& byte : label) {
          byte = static_cast<uint8_t>(label_rng.Uniform(0, 255));
        }
        entries.emplace_back(label, Bytes(24, 0x5A));
      }
      if (!client.Update(entries).ok()) {
        failures.fetch_add(1);
        return;
      }
    }
  });

  std::thread searcher([&] {
    EmmClient client;
    if (!client.Connect("127.0.0.1", loopback.port()).ok()) {
      failures.fetch_add(1);
      return;
    }
    for (int i = 0; i < kSearches; ++i) {
      EmmClient::BatchQuery q;
      q.query_id = static_cast<uint32_t>(i);
      q.tokens = scheme.Delegate(range);
      auto outcome = client.SearchBatch({q});
      if (!outcome.ok() ||
          Sorted(outcome->ids[q.query_id]) != expected_ids) {
        failures.fetch_add(1);
        return;
      }
    }
  });

  updater.join();
  searcher.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(loopback.server().EntryCount(),
            base_entries + kUpdateBatches * kEntriesPerBatch);
}

TEST(ServerLoopbackTest, ResultFramesAreCappedAndInterleaved) {
  // With a tiny per-frame id cap, a two-query batch must stream many
  // SearchResult chunks alternating between the query ids (no query's ids
  // are buffered wholesale), terminated by one SearchDone.
  Rng rng(13);
  Dataset data = GenerateUniform(/*n=*/600, /*domain_size=*/256, rng);
  ConstantScheme scheme(CoverTechnique::kBrc, /*rng_seed=*/3);
  ASSERT_TRUE(scheme.Build(data).ok());

  LoopbackServer loopback([] {
    ServerOptions options;
    options.max_ids_per_result_frame = 4;
    return options;
  }());

  // Raw socket so individual frames stay observable.
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(loopback.port());
  ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);

  const auto send_frame = [&](FrameType type, const Bytes& payload) {
    Bytes frame;
    ASSERT_TRUE(EncodeFrame(type, payload, frame));
    ASSERT_EQ(send(fd, frame.data(), frame.size(), 0),
              static_cast<ssize_t>(frame.size()));
  };
  Bytes in;
  size_t offset = 0;
  const auto recv_frame = [&](Frame& frame) {
    for (;;) {
      const FrameParse parse = DecodeFrame(in, offset, frame, nullptr);
      if (parse == FrameParse::kFrame) return true;
      if (parse == FrameParse::kMalformed) return false;
      uint8_t chunk[4096];
      const ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      in.insert(in.end(), chunk, chunk + n);
    }
  };

  SetupRequest setup;
  setup.index_blob = scheme.SerializeIndex();
  send_frame(FrameType::kSetupReq, setup.Encode());
  Frame frame;
  ASSERT_TRUE(recv_frame(frame));
  ASSERT_EQ(frame.type, FrameType::kSetupResp);

  // Two ranges with plenty of results each.
  SearchBatchRequest batch;
  for (uint32_t q = 0; q < 2; ++q) {
    WireQuery query;
    query.query_id = 100 + q;
    for (const GgmDprf::Token& t :
         scheme.Delegate(Range{q * 128, q * 128 + 127})) {
      WireToken wt;
      wt.level = static_cast<uint8_t>(t.level);
      std::memcpy(wt.seed.data(), t.seed.data(), kLabelBytes);
      query.tokens.push_back(wt);
    }
    batch.queries.push_back(std::move(query));
  }
  send_frame(FrameType::kSearchBatchReq, batch.Encode());

  std::map<uint32_t, std::vector<uint64_t>> ids;
  std::vector<uint32_t> frame_order;
  size_t result_frames = 0;
  for (;;) {
    ASSERT_TRUE(recv_frame(frame));
    if (frame.type == FrameType::kSearchDone) break;
    ASSERT_EQ(frame.type, FrameType::kSearchResult);
    auto result = SearchResult::Decode(frame.payload);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->ids.size(), 4u) << "frame exceeds the id cap";
    ids[result->query_id].insert(ids[result->query_id].end(),
                                 result->ids.begin(), result->ids.end());
    frame_order.push_back(result->query_id);
    ++result_frames;
  }
  close(fd);

  // Both queries return ~300 ids; at <=4 per frame that is many chunks,
  // and the round-robin emission alternates the two query ids.
  EXPECT_GT(result_frames, 20u);
  ASSERT_GE(frame_order.size(), 4u);
  EXPECT_NE(frame_order[0], frame_order[1])
      << "chunks must interleave across query ids";
  for (uint32_t q = 0; q < 2; ++q) {
    Result<QueryResult> expected =
        scheme.Query(Range{q * 128, q * 128 + 127});
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(Sorted(ids[100 + q]), Sorted(expected->ids));
  }
}

TEST(ServerLoopbackTest, MalformedFrameGetsErrorThenDisconnect) {
  LoopbackServer loopback;

  // Raw socket: a frame with a bad wire version. The server must answer
  // with an Error frame and close, never crash or hang.
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(loopback.port());
  ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  Bytes bad;
  ASSERT_TRUE(EncodeFrame(FrameType::kStatsReq, {}, bad));
  bad[4] = kWireVersion + 9;
  ASSERT_EQ(send(fd, bad.data(), bad.size(), 0),
            static_cast<ssize_t>(bad.size()));

  // Read until EOF; the stream must parse as exactly one Error frame.
  Bytes in;
  uint8_t chunk[4096];
  for (;;) {
    const ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    in.insert(in.end(), chunk, chunk + n);
  }
  close(fd);
  size_t offset = 0;
  Frame frame;
  ASSERT_EQ(DecodeFrame(in, offset, frame, nullptr), FrameParse::kFrame);
  EXPECT_EQ(frame.type, FrameType::kError);
  auto error = ErrorResponse::Decode(frame.payload);
  ASSERT_TRUE(error.ok());
  EXPECT_NE(error->message.find("version"), std::string::npos);
  EXPECT_EQ(offset, in.size()) << "exactly one frame before disconnect";

  // The server must still serve well-formed peers afterwards.
  EmmClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", loopback.port()).ok());
  EXPECT_TRUE(client.Stats().ok());
}

TEST(ServerLoopbackTest, SlowReaderIsBackpressuredNotBuffered) {
  // The backpressure acceptance case, deliberately on a ONE-worker pool:
  // a drip-reading client stuck mid-stream must park (releasing its
  // worker and capping its outbound queue) rather than buffer the whole
  // result set — otherwise the fast client below would hang forever.
  Rng rng(29);
  // Big enough that the full-domain result overflows the kernel's socket
  // buffers, so unsent output accumulates server-side where the cap
  // applies.
  Dataset data = GenerateUniform(/*n=*/40000, /*domain_size=*/1 << 16, rng);
  ConstantScheme scheme(CoverTechnique::kBrc, /*rng_seed=*/3);
  scheme.SetShards(2);
  ASSERT_TRUE(scheme.Build(data).ok());

  constexpr size_t kMaxOutbound = 32 * 1024;
  LoopbackServer loopback([] {
    ServerOptions options;
    options.search_workers = 1;
    options.max_outbound_bytes = kMaxOutbound;
    options.max_ids_per_result_frame = 512;  // frames well under the cap
    return options;
  }());
  {
    EmmClient setup;
    ASSERT_TRUE(setup.Connect("127.0.0.1", loopback.port()).ok());
    ASSERT_TRUE(setup.Setup(scheme.SerializeIndex()).ok());
  }

  // The slow reader: tiny receive window, one full-domain query, and no
  // reads until the end of the test.
  const int slow_fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(slow_fd, 0);
  const int rcvbuf = 4096;
  setsockopt(slow_fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(loopback.port());
  ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(
      connect(slow_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
      0);
  {
    SearchBatchRequest req;
    WireQuery query;
    query.query_id = 7;
    for (const GgmDprf::Token& t :
         scheme.Delegate(Range{0, (1 << 16) - 1})) {
      WireToken wt;
      wt.level = static_cast<uint8_t>(t.level);
      std::memcpy(wt.seed.data(), t.seed.data(), kLabelBytes);
      query.tokens.push_back(wt);
    }
    req.queries.push_back(std::move(query));
    Bytes frame;
    ASSERT_TRUE(EncodeFrame(FrameType::kSearchBatchReq, req.Encode(), frame));
    ASSERT_EQ(send(slow_fd, frame.data(), frame.size(), 0),
              static_cast<ssize_t>(frame.size()));
  }

  // While the slow stream is stalled, a well-behaved client's queries
  // must still be served — with one worker, that is only possible if the
  // stalled job parks instead of holding it. (If parking were broken,
  // these calls would block until the 30 s client timeout.)
  EmmClient fast;
  ASSERT_TRUE(fast.Connect("127.0.0.1", loopback.port()).ok());
  for (int i = 0; i < 10; ++i) {
    const uint64_t lo = static_cast<uint64_t>(i) * 1024;
    EmmClient::BatchQuery q;
    q.query_id = static_cast<uint32_t>(i);
    q.tokens = scheme.Delegate(Range{lo, lo + 1023});
    auto outcome = fast.SearchBatch({q});
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    Result<QueryResult> expected = scheme.Query(Range{lo, lo + 1023});
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(Sorted(outcome->ids[q.query_id]), Sorted(expected->ids));
  }

  // The stalled connection's unsent output stayed under the high-water
  // mark the whole time (the gauge records the running maximum).
  EXPECT_LE(loopback.server().stats().peak_outbound_bytes.value(),
            kMaxOutbound);

  // Now drain the slow socket: the parked stream must resume through
  // park/unpark cycles and deliver the exact full-domain result.
  Bytes in;
  size_t offset = 0;
  std::vector<uint64_t> slow_ids;
  bool done = false;
  while (!done) {
    Frame frame;
    const FrameParse parse = DecodeFrame(in, offset, frame, nullptr);
    if (parse == FrameParse::kNeedMore) {
      uint8_t chunk[4096];
      const ssize_t n = recv(slow_fd, chunk, sizeof(chunk), 0);
      ASSERT_GT(n, 0) << "server closed mid-stream";
      in.insert(in.end(), chunk, chunk + n);
      continue;
    }
    ASSERT_EQ(parse, FrameParse::kFrame);
    if (frame.type == FrameType::kSearchDone) {
      done = true;
      break;
    }
    ASSERT_EQ(frame.type, FrameType::kSearchResult);
    auto result = SearchResult::Decode(frame.payload);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->query_id, 7u);
    slow_ids.insert(slow_ids.end(), result->ids.begin(), result->ids.end());
  }
  close(slow_fd);

  Result<QueryResult> expected = scheme.Query(Range{0, (1 << 16) - 1});
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(Sorted(std::move(slow_ids)), Sorted(expected->ids));
  EXPECT_LE(loopback.server().stats().peak_outbound_bytes.value(),
            kMaxOutbound);
}

TEST(ServerLoopbackTest, PipelinedRequestsAnswerInOrder) {
  // Requests pipelined onto one connection (no waiting for responses)
  // must come back strictly in request order: the per-connection job
  // queue runs one job at a time, FIFO.
  Rng rng(31);
  Dataset data = GenerateUniform(/*n=*/2000, /*domain_size=*/1 << 12, rng);
  ConstantScheme scheme(CoverTechnique::kBrc, /*rng_seed=*/3);
  ASSERT_TRUE(scheme.Build(data).ok());

  LoopbackServer loopback([] {
    ServerOptions options;
    options.search_workers = 4;
    return options;
  }());

  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(loopback.port());
  ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);

  // One buffer, four frames, one send: Setup, two searches, Stats.
  Bytes wire;
  {
    SetupRequest setup;
    setup.index_blob = scheme.SerializeIndex();
    ASSERT_TRUE(EncodeFrame(FrameType::kSetupReq, setup.Encode(), wire));
    for (uint32_t q = 0; q < 2; ++q) {
      SearchBatchRequest req;
      WireQuery query;
      query.query_id = 500 + q;
      for (const GgmDprf::Token& t :
           scheme.Delegate(Range{q * 1024, q * 1024 + 1023})) {
        WireToken wt;
        wt.level = static_cast<uint8_t>(t.level);
        std::memcpy(wt.seed.data(), t.seed.data(), kLabelBytes);
        query.tokens.push_back(wt);
      }
      req.queries.push_back(std::move(query));
      ASSERT_TRUE(
          EncodeFrame(FrameType::kSearchBatchReq, req.Encode(), wire));
    }
    ASSERT_TRUE(EncodeFrame(FrameType::kStatsReq, {}, wire));
  }
  ASSERT_EQ(send(fd, wire.data(), wire.size(), 0),
            static_cast<ssize_t>(wire.size()));

  Bytes in;
  size_t offset = 0;
  Frame frame;
  const auto recv_frame = [&]() {
    for (;;) {
      const FrameParse parse = DecodeFrame(in, offset, frame, nullptr);
      if (parse == FrameParse::kFrame) return true;
      if (parse == FrameParse::kMalformed) return false;
      uint8_t chunk[4096];
      const ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      in.insert(in.end(), chunk, chunk + n);
    }
  };

  // Response 1: the setup ack.
  ASSERT_TRUE(recv_frame());
  ASSERT_EQ(frame.type, FrameType::kSetupResp);
  // Responses 2 and 3: each search's full stream (results, then its
  // done), in request order, with no frames of the other search
  // interleaved between them.
  for (uint32_t q = 0; q < 2; ++q) {
    std::vector<uint64_t> ids;
    for (;;) {
      ASSERT_TRUE(recv_frame());
      if (frame.type == FrameType::kSearchDone) break;
      ASSERT_EQ(frame.type, FrameType::kSearchResult);
      auto result = SearchResult::Decode(frame.payload);
      ASSERT_TRUE(result.ok());
      ASSERT_EQ(result->query_id, 500 + q)
          << "pipelined responses out of request order";
      ids.insert(ids.end(), result->ids.begin(), result->ids.end());
    }
    Result<QueryResult> expected =
        scheme.Query(Range{q * 1024, q * 1024 + 1023});
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(Sorted(std::move(ids)), Sorted(expected->ids));
  }
  // Response 4: the stats snapshot, reflecting both served batches.
  ASSERT_TRUE(recv_frame());
  ASSERT_EQ(frame.type, FrameType::kStatsResp);
  auto stats = StatsResponse::Decode(frame.payload);
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->batches_served, 2u);
  close(fd);
}

}  // namespace
}  // namespace rsse::server
