#include "dprf/ggm_dprf.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "crypto/prg.h"
#include "crypto/random.h"
#include "cover/urc.h"
#include "prg_backend_guard.h"

namespace rsse {
namespace {

TEST(GgmDprfTest, EvalMatchesPaperExample) {
  // Section 2.2: the DPRF of 6 = (110)_2 is G0(G1(G1(k))).
  Bytes key = crypto::GenerateKey();
  GgmDprf dprf(key, 3);
  Bytes expected = crypto::GgmPrg::G0(crypto::GgmPrg::G1(crypto::GgmPrg::G1(key)));
  EXPECT_EQ(dprf.Eval(6), expected);
}

TEST(GgmDprfTest, NodeSeedMatchesPaperDelegation) {
  // Section 2.2: node N4,7's seed is G1(k).
  Bytes key = crypto::GenerateKey();
  GgmDprf dprf(key, 3);
  EXPECT_EQ(dprf.NodeSeed(DyadicNode{2, 1}), crypto::GgmPrg::G1(key));
  // Root seed is the key itself.
  EXPECT_EQ(dprf.NodeSeed(DyadicNode{3, 0}), key);
}

TEST(GgmDprfTest, LeafValuesAllDistinct) {
  GgmDprf dprf(crypto::GenerateKey(), 5);
  std::set<std::string> values;
  for (uint64_t v = 0; v < 32; ++v) values.insert(ToHex(dprf.Eval(v)));
  EXPECT_EQ(values.size(), 32u);
}

TEST(GgmDprfTest, ExpandReproducesLeafValuesInOrder) {
  GgmDprf dprf(crypto::GenerateKey(), 4);
  for (int level = 0; level <= 4; ++level) {
    for (uint64_t index = 0; index < (uint64_t{1} << (4 - level)); ++index) {
      DyadicNode node{level, index};
      GgmDprf::Token token{dprf.NodeSeed(node), level};
      std::vector<Bytes> leaves = GgmDprf::Expand(token);
      ASSERT_EQ(leaves.size(), node.Size());
      for (uint64_t off = 0; off < node.Size(); ++off) {
        EXPECT_EQ(leaves[off], dprf.Eval(node.Lo() + off))
            << "node level=" << level << " index=" << index << " off=" << off;
      }
    }
  }
}

TEST(GgmDprfTest, DelegationCoversRangeExactly) {
  Rng rng(7);
  GgmDprf dprf(crypto::GenerateKey(), 6);
  for (const auto technique : {CoverTechnique::kBrc, CoverTechnique::kUrc}) {
    for (uint64_t lo = 0; lo < 64; lo += 5) {
      for (uint64_t hi = lo; hi < 64; hi += 7) {
        std::vector<GgmDprf::Token> tokens =
            dprf.Delegate(Range{lo, hi}, technique, rng);
        std::set<std::string> derived;
        for (const auto& t : tokens) {
          for (const Bytes& leaf : GgmDprf::Expand(t)) {
            derived.insert(ToHex(leaf));
          }
        }
        std::set<std::string> expected;
        for (uint64_t v = lo; v <= hi; ++v) {
          expected.insert(ToHex(dprf.Eval(v)));
        }
        EXPECT_EQ(derived, expected)
            << "range [" << lo << "," << hi << "] technique "
            << (technique == CoverTechnique::kBrc ? "BRC" : "URC");
      }
    }
  }
}

TEST(GgmDprfTest, TokenCountLogarithmic) {
  Rng rng(7);
  GgmDprf dprf(crypto::GenerateKey(), 16);
  for (uint64_t size : {1u, 10u, 100u, 1000u, 10000u}) {
    std::vector<GgmDprf::Token> tokens =
        dprf.Delegate(Range{3, 3 + size - 1}, CoverTechnique::kBrc, rng);
    int log_r = 0;
    while ((uint64_t{1} << log_r) < size) ++log_r;
    EXPECT_LE(tokens.size(), static_cast<size_t>(2 * (log_r + 1)));
  }
}

TEST(GgmDprfTest, UrcTokenLevelsDependOnlyOnRangeSize) {
  // The shape an adversary sees from URC tokens must not reveal position.
  Rng rng(7);
  GgmDprf dprf(crypto::GenerateKey(), 8);
  const uint64_t size = 11;
  std::vector<int> reference;
  for (uint64_t lo = 0; lo + size <= 256; lo += 13) {
    std::vector<GgmDprf::Token> tokens =
        dprf.Delegate(Range{lo, lo + size - 1}, CoverTechnique::kUrc, rng);
    std::vector<int> levels;
    for (const auto& t : tokens) levels.push_back(t.level);
    std::sort(levels.begin(), levels.end());
    if (reference.empty()) {
      reference = levels;
    } else {
      EXPECT_EQ(levels, reference) << "at lo=" << lo;
    }
  }
  EXPECT_EQ(reference, UrcLevelProfile(size, 8));
}

TEST(GgmDprfTest, DifferentKeysProduceUnrelatedValues) {
  GgmDprf a(crypto::GenerateKey(), 4);
  GgmDprf b(crypto::GenerateKey(), 4);
  for (uint64_t v = 0; v < 16; ++v) EXPECT_NE(a.Eval(v), b.Eval(v));
}

TEST(GgmDprfTest, LargeDomainDelegationConsistent) {
  // 40-bit domain: delegation + public expansion must still reproduce the
  // owner-side evaluations exactly.
  Rng rng(3);
  GgmDprf dprf(crypto::GenerateKey(), 40);
  const uint64_t lo = (uint64_t{1} << 39) - 5;  // straddles a high subtree
  const Range r{lo, lo + 40};
  std::vector<GgmDprf::Token> tokens =
      dprf.Delegate(r, CoverTechnique::kUrc, rng);
  std::set<std::string> derived;
  for (const auto& t : tokens) {
    for (const Bytes& leaf : GgmDprf::Expand(t)) derived.insert(ToHex(leaf));
  }
  EXPECT_EQ(derived.size(), r.Size());
  for (uint64_t v = r.lo; v <= r.hi; ++v) {
    EXPECT_TRUE(derived.count(ToHex(dprf.Eval(v)))) << "missing leaf " << v;
  }
}

TEST(GgmDprfTest, ExpandIntoMatchesExpand) {
  GgmDprf dprf(crypto::GenerateKey(), 10);
  for (int level : {0, 1, 4, 8}) {
    GgmDprf::Token token{
        dprf.NodeSeed(DyadicNode{level, 1}), level};
    std::vector<Bytes> reference = GgmDprf::Expand(token);
    std::vector<Label> leaves;
    ASSERT_TRUE(GgmDprf::ExpandInto(token, leaves));
    ASSERT_EQ(leaves.size(), reference.size()) << "level " << level;
    for (size_t i = 0; i < leaves.size(); ++i) {
      EXPECT_EQ(LabelToBytes(leaves[i]), reference[i])
          << "level " << level << " leaf " << i;
    }
  }
}

TEST(GgmDprfTest, ExpandIntoRejectsMalformedTokens) {
  std::vector<Label> leaves;
  EXPECT_FALSE(GgmDprf::ExpandInto(GgmDprf::Token{Bytes(8, 0), 2}, leaves));
  EXPECT_FALSE(GgmDprf::ExpandInto(GgmDprf::Token{Bytes(16, 0), -1}, leaves));
  EXPECT_FALSE(GgmDprf::ExpandInto(GgmDprf::Token{Bytes(16, 0), 63}, leaves));
}

TEST(GgmDprfTest, ExpandIntoReusesCallerBuffer) {
  GgmDprf dprf(crypto::GenerateKey(), 6);
  std::vector<Label> leaves;
  GgmDprf::Token big{dprf.NodeSeed(DyadicNode{5, 0}), 5};
  ASSERT_TRUE(GgmDprf::ExpandInto(big, leaves));
  EXPECT_EQ(leaves.size(), 32u);
  GgmDprf::Token small{dprf.NodeSeed(DyadicNode{2, 3}), 2};
  ASSERT_TRUE(GgmDprf::ExpandInto(small, leaves));
  ASSERT_EQ(leaves.size(), 4u);
  for (uint64_t off = 0; off < 4; ++off) {
    EXPECT_EQ(LabelToBytes(leaves[off]), dprf.Eval(12 + off));
  }
}

TEST(GgmDprfTest, AesBackendDelegationConsistent) {
  // Full delegation/expansion round under the AES PRG backend: the
  // publicly expanded leaves must equal the owner-side evaluations.
  crypto::PrgBackendGuard guard(crypto::GgmPrg::Backend::kAes);
  Rng rng(11);
  GgmDprf dprf(crypto::GenerateKey(), 8);
  const Range r{37, 200};
  std::set<std::string> derived;
  for (const auto& t : dprf.Delegate(r, CoverTechnique::kBrc, rng)) {
    for (const Bytes& leaf : GgmDprf::Expand(t)) derived.insert(ToHex(leaf));
  }
  std::set<std::string> expected;
  for (uint64_t v = r.lo; v <= r.hi; ++v) {
    expected.insert(ToHex(dprf.Eval(v)));
  }
  EXPECT_EQ(derived, expected);
}

TEST(GgmDprfTest, TokensArePermuted) {
  // Delegate a wide range repeatedly; orders must differ across runs (the
  // trapdoor hides cover-node order).
  GgmDprf dprf(crypto::GenerateKey(), 10);
  Rng rng1(1);
  Rng rng2(2);
  auto t1 = dprf.Delegate(Range{1, 700}, CoverTechnique::kBrc, rng1);
  auto t2 = dprf.Delegate(Range{1, 700}, CoverTechnique::kBrc, rng2);
  ASSERT_EQ(t1.size(), t2.size());
  ASSERT_GT(t1.size(), 3u);
  bool same_order = true;
  for (size_t i = 0; i < t1.size(); ++i) {
    if (t1[i].seed != t2[i].seed) same_order = false;
  }
  EXPECT_FALSE(same_order);
}

}  // namespace
}  // namespace rsse
