#include "shard/sharded_emm.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "sse/emm_codec.h"
#include "sse/encrypted_multimap.h"
#include "sse/keyword_keys.h"

namespace rsse::shard {
namespace {

Bytes FixedKey(uint8_t fill) { return Bytes(kLabelBytes, fill); }

sse::PlainMultimap MakePostings(int keywords, int per_keyword) {
  sse::PlainMultimap postings;
  for (int w = 0; w < keywords; ++w) {
    Bytes keyword;
    AppendUint64(keyword, static_cast<uint64_t>(w));
    for (int i = 0; i < per_keyword; ++i) {
      postings[keyword].push_back(
          sse::EncodeIdPayload(static_cast<uint64_t>(w * 1000 + i)));
    }
  }
  return postings;
}

TEST(ShardedEmmTest, MatchesFlatMultimapResults) {
  sse::PlainMultimap postings = MakePostings(40, 7);
  sse::PrfKeyDeriver deriver(FixedKey(0x21));

  auto flat = sse::EncryptedMultimap::Build(postings, deriver);
  ASSERT_TRUE(flat.ok());

  ShardOptions options;
  options.shards = 4;
  options.threads = 4;
  auto sharded = ShardedEmm::Build(postings, deriver, options);
  ASSERT_TRUE(sharded.ok());
  EXPECT_EQ(sharded->shard_count(), 4);
  EXPECT_EQ(sharded->EntryCount(), flat->EntryCount());
  EXPECT_EQ(sharded->SizeBytes(), flat->SizeBytes());

  for (const auto& [keyword, payloads] : postings) {
    sse::KeywordKeys token = deriver.Derive(keyword);
    EXPECT_EQ(sharded->Search(token), flat->Search(token));
  }
}

TEST(ShardedEmmTest, ShardsArePopulatedAndRoutingIsStable) {
  sse::PlainMultimap postings = MakePostings(64, 4);
  sse::PrfKeyDeriver deriver(FixedKey(0x07));
  ShardOptions options;
  options.shards = 8;
  options.threads = 3;
  auto store = ShardedEmm::Build(postings, deriver, options);
  ASSERT_TRUE(store.ok());

  // 256 pseudorandom labels across 8 shards: every shard should see some.
  size_t total = 0;
  for (int s = 0; s < store->shard_count(); ++s) {
    EXPECT_GT(store->ShardEntryCount(static_cast<size_t>(s)), 0u);
    total += store->ShardEntryCount(static_cast<size_t>(s));
  }
  EXPECT_EQ(total, store->EntryCount());
}

TEST(ShardedEmmTest, SerializeRoundTripsAcrossThreadCounts) {
  sse::PlainMultimap postings = MakePostings(30, 5);
  sse::PrfKeyDeriver deriver(FixedKey(0x55));
  ShardOptions options;
  options.shards = 4;
  options.threads = 2;
  options.padding.quantum = 4;
  auto store = ShardedEmm::Build(postings, deriver, options);
  ASSERT_TRUE(store.ok());

  Bytes blob = store->Serialize();
  for (int load_threads : {1, 4}) {
    auto restored = ShardedEmm::Deserialize(blob, load_threads);
    ASSERT_TRUE(restored.ok());
    EXPECT_EQ(restored->shard_count(), store->shard_count());
    EXPECT_EQ(restored->EntryCount(), store->EntryCount());
    EXPECT_EQ(restored->SizeBytes(), store->SizeBytes());
    for (const auto& [keyword, payloads] : postings) {
      sse::KeywordKeys token = deriver.Derive(keyword);
      EXPECT_EQ(restored->Search(token), store->Search(token));
    }
    EXPECT_EQ(restored->Serialize(), blob);
  }
}

TEST(ShardedEmmTest, DeserializeRejectsCorruptBlobs) {
  sse::PlainMultimap postings = MakePostings(8, 3);
  sse::PrfKeyDeriver deriver(FixedKey(0x99));
  ShardOptions options;
  options.shards = 2;
  auto store = ShardedEmm::Build(postings, deriver, options);
  ASSERT_TRUE(store.ok());
  Bytes blob = store->Serialize();

  Bytes bad_magic = blob;
  bad_magic[0] ^= 0xff;
  EXPECT_FALSE(ShardedEmm::Deserialize(bad_magic).ok());

  Bytes truncated(blob.begin(), blob.begin() + static_cast<long>(
                                                   blob.size() / 2));
  EXPECT_FALSE(ShardedEmm::Deserialize(truncated).ok());

  Bytes trailing = blob;
  trailing.push_back(0x00);
  EXPECT_FALSE(ShardedEmm::Deserialize(trailing).ok());

  EXPECT_FALSE(ShardedEmm::Deserialize(Bytes{}).ok());
}

TEST(ShardedEmmTest, InsertRoutesPreEncryptedEntries) {
  sse::PlainMultimap postings = MakePostings(10, 2);
  sse::PrfKeyDeriver deriver(FixedKey(0x31));
  ShardOptions options;
  options.shards = 4;
  auto store = ShardedEmm::Build(postings, deriver, options);
  ASSERT_TRUE(store.ok());
  const size_t before = store->EntryCount();

  // Client-side: encrypt a fresh keyword's postings into codec-format
  // entries, then ship the raw (label, ciphertext) pairs — the server
  // Update path.
  Bytes keyword = ToBytes("fresh-keyword");
  std::vector<Bytes> payloads = {sse::EncodeIdPayload(424242)};
  std::vector<std::pair<Label, Bytes>> entries;
  Bytes scratch;
  Status s = sse::EncryptKeywordEntries(
      keyword, payloads, deriver, /*pad_quantum=*/0, scratch,
      [&entries](const Label& label, size_t len) {
        entries.emplace_back(label, Bytes(len));
        return ByteSpan(entries.back().second.data(), len);
      });
  ASSERT_TRUE(s.ok());
  for (const auto& [label, value] : entries) {
    store->Insert(label, ConstByteSpan(value.data(), value.size()));
  }

  EXPECT_EQ(store->EntryCount(), before + entries.size());
  std::vector<Bytes> hits = store->Search(deriver.Derive(keyword));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(sse::DecodeIdPayload(hits[0]), 424242u);
}

TEST(ShardedEmmTest, ShardOfUsesRoutingBytesOnly) {
  Label a{};
  Label b{};
  b[0] = 0xff;  // probe-hash byte: must not change the shard
  EXPECT_EQ(ShardedEmm::ShardOf(a, 16), ShardedEmm::ShardOf(b, 16));
  Label c = a;
  c[15] = 0x01;  // low routing byte (big-endian): moves the shard
  EXPECT_NE(ShardedEmm::ShardOf(a, 16), ShardedEmm::ShardOf(c, 16));
}

}  // namespace
}  // namespace rsse::shard
