#include "shard/sharded_emm.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/crc32c.h"
#include "crypto/hmac_prf.h"
#include "crypto/random.h"
#include "sse/emm_codec.h"
#include "sse/encrypted_multimap.h"
#include "sse/keyword_keys.h"

namespace rsse::shard {
namespace {

Bytes FixedKey(uint8_t fill) { return Bytes(kLabelBytes, fill); }

// Hex strings rather than raw Bytes: GCC 12's -Werror=stringop-overread
// misfires on sorting std::vector<std::vector<uint8_t>> in optimized
// builds.
std::vector<std::string> Sorted(const std::vector<Bytes>& v) {
  std::vector<std::string> hex;
  hex.reserve(v.size());
  for (const Bytes& b : v) hex.push_back(ToHex(b));
  std::sort(hex.begin(), hex.end());
  return hex;
}

sse::PlainMultimap MakePostings(int keywords, int per_keyword) {
  sse::PlainMultimap postings;
  for (int w = 0; w < keywords; ++w) {
    Bytes keyword;
    AppendUint64(keyword, static_cast<uint64_t>(w));
    for (int i = 0; i < per_keyword; ++i) {
      postings[keyword].push_back(
          sse::EncodeIdPayload(static_cast<uint64_t>(w * 1000 + i)));
    }
  }
  return postings;
}

TEST(ShardedEmmTest, MatchesFlatMultimapResults) {
  sse::PlainMultimap postings = MakePostings(40, 7);
  sse::PrfKeyDeriver deriver(FixedKey(0x21));

  auto flat = sse::EncryptedMultimap::Build(postings, deriver);
  ASSERT_TRUE(flat.ok());

  ShardOptions options;
  options.shards = 4;
  options.threads = 4;
  auto sharded = ShardedEmm::Build(postings, deriver, options);
  ASSERT_TRUE(sharded.ok());
  EXPECT_EQ(sharded->shard_count(), 4);
  EXPECT_EQ(sharded->EntryCount(), flat->EntryCount());
  EXPECT_EQ(sharded->SizeBytes(), flat->SizeBytes());

  for (const auto& [keyword, payloads] : postings) {
    sse::KeywordKeys token = deriver.Derive(keyword);
    EXPECT_EQ(sharded->Search(token), flat->Search(token));
  }
}

TEST(ShardedEmmTest, ShardsArePopulatedAndRoutingIsStable) {
  sse::PlainMultimap postings = MakePostings(64, 4);
  sse::PrfKeyDeriver deriver(FixedKey(0x07));
  ShardOptions options;
  options.shards = 8;
  options.threads = 3;
  auto store = ShardedEmm::Build(postings, deriver, options);
  ASSERT_TRUE(store.ok());

  // 256 pseudorandom labels across 8 shards: every shard should see some.
  size_t total = 0;
  for (int s = 0; s < store->shard_count(); ++s) {
    EXPECT_GT(store->ShardEntryCount(static_cast<size_t>(s)), 0u);
    total += store->ShardEntryCount(static_cast<size_t>(s));
  }
  EXPECT_EQ(total, store->EntryCount());
}

TEST(ShardedEmmTest, SerializeRoundTripsAcrossThreadCounts) {
  sse::PlainMultimap postings = MakePostings(30, 5);
  sse::PrfKeyDeriver deriver(FixedKey(0x55));
  ShardOptions options;
  options.shards = 4;
  options.threads = 2;
  options.padding.quantum = 4;
  auto store = ShardedEmm::Build(postings, deriver, options);
  ASSERT_TRUE(store.ok());

  Bytes blob = store->Serialize();
  for (int load_threads : {1, 4}) {
    auto restored = ShardedEmm::Deserialize(blob, load_threads);
    ASSERT_TRUE(restored.ok());
    EXPECT_EQ(restored->shard_count(), store->shard_count());
    EXPECT_EQ(restored->EntryCount(), store->EntryCount());
    EXPECT_EQ(restored->SizeBytes(), store->SizeBytes());
    for (const auto& [keyword, payloads] : postings) {
      sse::KeywordKeys token = deriver.Derive(keyword);
      EXPECT_EQ(restored->Search(token), store->Search(token));
    }
    EXPECT_EQ(restored->Serialize(), blob);
  }
}

TEST(ShardedEmmTest, DeserializeRejectsCorruptBlobs) {
  sse::PlainMultimap postings = MakePostings(8, 3);
  sse::PrfKeyDeriver deriver(FixedKey(0x99));
  ShardOptions options;
  options.shards = 2;
  auto store = ShardedEmm::Build(postings, deriver, options);
  ASSERT_TRUE(store.ok());
  Bytes blob = store->Serialize();

  Bytes bad_magic = blob;
  bad_magic[0] ^= 0xff;
  EXPECT_FALSE(ShardedEmm::Deserialize(bad_magic).ok());

  Bytes truncated(blob.begin(), blob.begin() + static_cast<long>(
                                                   blob.size() / 2));
  EXPECT_FALSE(ShardedEmm::Deserialize(truncated).ok());

  Bytes trailing = blob;
  trailing.push_back(0x00);
  EXPECT_FALSE(ShardedEmm::Deserialize(trailing).ok());

  EXPECT_FALSE(ShardedEmm::Deserialize(Bytes{}).ok());
}

TEST(ShardedEmmTest, DeserializeByteFlipMatrixNeverCrashes) {
  // The blob carries no checksum — acceptance is structural validation
  // alone. The contract under a single flipped byte is therefore not
  // "always rejected" (a flip inside an opaque ciphertext value is
  // indistinguishable from a different ciphertext) but "never undefined":
  // each flip either fails cleanly or yields a store whose entries stay
  // within the original bounds and whose Search never faults. Structural
  // fields (magic, directory, counts, lengths, routing) must reject.
  sse::PlainMultimap postings = MakePostings(6, 2);
  sse::PrfKeyDeriver deriver(FixedKey(0xa4));
  ShardOptions options;
  options.shards = 2;
  auto store = ShardedEmm::Build(postings, deriver, options);
  ASSERT_TRUE(store.ok());
  const Bytes blob = store->Serialize();
  const size_t entries = store->EntryCount();

  // Everything before the first section's entries is structure: magic,
  // shard count, directory, first entry count. A flip there must reject.
  const size_t structural_prefix = 12 + 8 * store->shard_count() + 8;
  size_t accepted = 0;
  for (size_t pos = 0; pos < blob.size(); ++pos) {
    for (uint8_t mask : {uint8_t{0x01}, uint8_t{0x80}}) {
      Bytes mutated = blob;
      mutated[pos] ^= mask;
      auto restored = ShardedEmm::Deserialize(mutated);
      if (pos < structural_prefix) {
        EXPECT_FALSE(restored.ok())
            << "structural byte " << pos << " mask " << int(mask);
      }
      if (!restored.ok()) continue;
      ++accepted;
      EXPECT_LE(restored->EntryCount(), entries);
      for (const auto& [keyword, payloads] : postings) {
        restored->Search(deriver.Derive(keyword));  // must not fault
      }
    }
  }
  // Sanity: the matrix exercised both outcomes (values dominate the blob,
  // so some flips land in ciphertext and are structurally acceptable).
  EXPECT_GT(accepted, 0u);
}

TEST(ShardedEmmTest, DeserializeTruncationMatrixRejectsEveryPrefix) {
  sse::PlainMultimap postings = MakePostings(5, 2);
  sse::PrfKeyDeriver deriver(FixedKey(0xb7));
  ShardOptions options;
  options.shards = 2;
  auto store = ShardedEmm::Build(postings, deriver, options);
  ASSERT_TRUE(store.ok());
  const Bytes blob = store->Serialize();
  for (size_t len = 0; len < blob.size(); ++len) {
    Bytes prefix(blob.begin(), blob.begin() + static_cast<long>(len));
    EXPECT_FALSE(ShardedEmm::Deserialize(prefix).ok()) << "prefix " << len;
  }
  // ... and the same matrix under re-shard-on-load, whose parse path
  // stages entries before re-routing them.
  for (size_t len = 0; len < blob.size(); len += 7) {
    Bytes prefix(blob.begin(), blob.begin() + static_cast<long>(len));
    EXPECT_FALSE(
        ShardedEmm::Deserialize(prefix, /*threads=*/1, /*target_shards=*/4)
            .ok())
        << "resharded prefix " << len;
  }
}

TEST(ShardedEmmTest, InsertRoutesPreEncryptedEntries) {
  sse::PlainMultimap postings = MakePostings(10, 2);
  sse::PrfKeyDeriver deriver(FixedKey(0x31));
  ShardOptions options;
  options.shards = 4;
  auto store = ShardedEmm::Build(postings, deriver, options);
  ASSERT_TRUE(store.ok());
  const size_t before = store->EntryCount();

  // Client-side: encrypt a fresh keyword's postings into codec-format
  // entries, then ship the raw (label, ciphertext) pairs — the server
  // Update path.
  Bytes keyword = ToBytes("fresh-keyword");
  std::vector<Bytes> payloads = {sse::EncodeIdPayload(424242)};
  std::vector<std::pair<Label, Bytes>> entries;
  sse::EmmBuildScratch scratch;
  Status s = sse::EncryptKeywordEntries(
      keyword, payloads, deriver, /*pad_quantum=*/0, scratch,
      [&entries](const Label& label, size_t len) {
        entries.emplace_back(label, Bytes(len));
        return ByteSpan(entries.back().second.data(), len);
      });
  ASSERT_TRUE(s.ok());
  for (const auto& [label, value] : entries) {
    store->Insert(label, ConstByteSpan(value.data(), value.size()));
  }

  EXPECT_EQ(store->EntryCount(), before + entries.size());
  std::vector<Bytes> hits = store->Search(deriver.Derive(keyword));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(sse::DecodeIdPayload(hits[0]), 424242u);
}


TEST(ShardedEmmTest, ReshardOnLoadSplitsAndMerges) {
  // Re-shard on load: a 4-shard blob split to 8 shards and an 8-shard blob
  // merged to 2 must preserve every entry and every search result, with
  // entries routed by the target count.
  sse::PlainMultimap postings = MakePostings(40, 6);
  sse::PrfKeyDeriver deriver(crypto::GenerateKey());
  for (const auto& [built_shards, target] :
       std::vector<std::pair<int, int>>{{4, 8}, {8, 2}}) {
    ShardOptions options;
    options.shards = built_shards;
    auto store = ShardedEmm::Build(postings, deriver, options);
    ASSERT_TRUE(store.ok());
    Bytes blob = store->Serialize();
    auto loaded = ShardedEmm::Deserialize(blob, /*threads=*/2, target);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded->shard_count(), target);
    EXPECT_EQ(loaded->EntryCount(), store->EntryCount());
    EXPECT_EQ(loaded->SizeBytes(), store->SizeBytes());
    size_t total = 0;
    for (int s = 0; s < target; ++s) {
      total += loaded->ShardEntryCount(static_cast<size_t>(s));
    }
    EXPECT_EQ(total, loaded->EntryCount());
    for (uint64_t w = 0; w < 40; ++w) {
      Bytes keyword;
      AppendUint64(keyword, w);
      const sse::KeywordKeys token = deriver.Derive(keyword);
      EXPECT_EQ(Sorted(loaded->Search(token)), Sorted(store->Search(token)))
          << "keyword " << w << " (" << built_shards << " -> " << target
          << " shards)";
    }
    // A re-sharded store serializes as a native blob of the target count
    // and round-trips layout-preserving from there.
    auto again = ShardedEmm::Deserialize(loaded->Serialize());
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->shard_count(), target);
    EXPECT_EQ(again->EntryCount(), store->EntryCount());
  }
}


TEST(ShardedEmmTest, MalformedStoredValueEndsSearchAfterValidPrefix) {
  // A structurally malformed value (possible only via foreign Update
  // entries) must terminate the counter probe without losing the valid
  // entries gathered before it in the same decrypt batch.
  sse::PrfKeyDeriver deriver(crypto::GenerateKey());
  ShardedEmm store = ShardedEmm::WithShards(2);
  Bytes keyword = ToBytes("w");
  std::vector<Bytes> payloads = {sse::EncodeIdPayload(7),
                                 sse::EncodeIdPayload(8)};
  sse::EmmBuildScratch scratch;
  std::vector<std::pair<Label, Bytes>> entries;
  ASSERT_TRUE(sse::EncryptKeywordEntries(
                  keyword, payloads, deriver, /*pad_quantum=*/0, scratch,
                  [&entries](const Label& label, size_t len) {
                    entries.emplace_back(label, Bytes(len));
                    return ByteSpan(entries.back().second.data(), len);
                  })
                  .ok());
  for (const auto& [label, value] : entries) {
    store.Insert(label, ConstByteSpan(value.data(), value.size()));
  }
  // Plant a 20-byte (unaligned, sub-minimum) value at counter position 2.
  const sse::KeywordKeys token = deriver.Derive(keyword);
  crypto::Prf label_prf(token.label_key);
  Label bad_label;
  ASSERT_TRUE(label_prf.EvalCountersInto(
      2, 1, ByteSpan(bad_label.data(), bad_label.size()), kLabelBytes));
  const Bytes garbage(20, 0xee);
  store.Insert(bad_label, ConstByteSpan(garbage.data(), garbage.size()));

  const std::vector<Bytes> hits = store.Search(token);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(sse::DecodeIdPayload(hits[0]), 7u);
  EXPECT_EQ(sse::DecodeIdPayload(hits[1]), 8u);
}

TEST(ShardedEmmTest, DeserializeKeepsStoredShardsByDefault) {
  sse::PlainMultimap postings = MakePostings(10, 3);
  sse::PrfKeyDeriver deriver(crypto::GenerateKey());
  ShardOptions options;
  options.shards = 4;
  auto store = ShardedEmm::Build(postings, deriver, options);
  ASSERT_TRUE(store.ok());
  auto loaded = ShardedEmm::Deserialize(store->Serialize());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->shard_count(), 4);
}

TEST(ShardedEmmTest, ShardOfUsesRoutingBytesOnly) {
  Label a{};
  Label b{};
  b[0] = 0xff;  // probe-hash byte: must not change the shard
  EXPECT_EQ(ShardedEmm::ShardOf(a, 16), ShardedEmm::ShardOf(b, 16));
  Label c = a;
  c[15] = 0x01;  // low routing byte (big-endian): moves the shard
  EXPECT_NE(ShardedEmm::ShardOf(a, 16), ShardedEmm::ShardOf(c, 16));
}

// --------------------------------------------------------------------------
// v2 store image: mmap-native serialization.
// --------------------------------------------------------------------------

std::string WriteTempImage(const Bytes& image, const char* name) {
  const std::string path =
      ::testing::TempDir() + "/rsse_v2_" + name + ".img";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  EXPECT_NE(f, nullptr);
  if (!image.empty()) {
    EXPECT_EQ(std::fwrite(image.data(), 1, image.size(), f), image.size());
  }
  EXPECT_EQ(std::fclose(f), 0);
  return path;
}

/// Recomputes the header CRC after a deliberate header/table mutation, so
/// the test reaches the structural validator behind the checksum.
void FixV2HeaderCrc(Bytes& image) {
  const uint32_t shard_count = LoadU32Le(image.data() + 24);
  const size_t table_end = 48 + 48 * size_t{shard_count};
  StoreU32Le(image.data() + table_end, Crc32c(image.data(), table_end));
}

ShardedEmm BuildStore(int shards, int keywords = 24, int per_keyword = 5,
                      uint8_t key_fill = 0x42) {
  sse::PlainMultimap postings = MakePostings(keywords, per_keyword);
  sse::PrfKeyDeriver deriver(FixedKey(key_fill));
  ShardOptions options;
  options.shards = shards;
  auto store = ShardedEmm::Build(postings, deriver, options);
  EXPECT_TRUE(store.ok());
  return std::move(*store);
}

TEST(ShardedEmmV2Test, MappedImageMatchesHeapStoreByteForByte) {
  sse::PlainMultimap postings = MakePostings(40, 7);
  sse::PrfKeyDeriver deriver(FixedKey(0x42));
  ShardOptions options;
  options.shards = 4;
  auto store = ShardedEmm::Build(postings, deriver, options);
  ASSERT_TRUE(store.ok());

  const Bytes image = store->SerializeV2(/*kind=*/1, /*epoch=*/7);
  ASSERT_TRUE(ShardedEmm::IsV2Image(
      ConstByteSpan(image.data(), image.size())));
  EXPECT_EQ(image.size() % 4096u, 0u);
  const std::string path = WriteTempImage(image, "equality");

  V2OpenOptions vopts;
  vopts.verify_checksums = true;
  auto mapped = ShardedEmm::OpenMapped(path, vopts);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_TRUE(mapped->IsMapped());
  EXPECT_GT(mapped->MappedBytes(), 0u);
  EXPECT_EQ(mapped->HeapBytes(), 0u);
  EXPECT_EQ(mapped->EntryCount(), store->EntryCount());
  EXPECT_EQ(mapped->shard_count(), store->shard_count());

  auto heap = ShardedEmm::LoadV2(ConstByteSpan(image.data(), image.size()),
                                 /*threads=*/2);
  ASSERT_TRUE(heap.ok()) << heap.status().ToString();
  EXPECT_FALSE(heap->IsMapped());
  EXPECT_EQ(heap->EntryCount(), store->EntryCount());

  // Query results must be byte-identical across all three substrates.
  for (const auto& [keyword, payloads] : postings) {
    const sse::KeywordKeys token = deriver.Derive(keyword);
    const std::vector<Bytes> expected = store->Search(token);
    EXPECT_EQ(mapped->Search(token), expected);
    EXPECT_EQ(heap->Search(token), expected);
  }
  std::remove(path.c_str());
}

TEST(ShardedEmmV2Test, SerializeV2IsDeterministicAcrossSubstrates) {
  ShardedEmm store = BuildStore(3);
  const Bytes image = store.SerializeV2(1, 5);
  const std::string path = WriteTempImage(image, "determinism");
  auto mapped = ShardedEmm::OpenMapped(path);
  ASSERT_TRUE(mapped.ok());
  auto heap = ShardedEmm::LoadV2(ConstByteSpan(image.data(), image.size()));
  ASSERT_TRUE(heap.ok());
  // Re-serializing a mapped or reloaded store reproduces the image: the
  // file IS the runtime layout, so the drain-time fold is stable.
  EXPECT_EQ(mapped->SerializeV2(1, 5), image);
  EXPECT_EQ(heap->SerializeV2(1, 5), image);
  std::remove(path.c_str());
}

TEST(ShardedEmmV2Test, MappedStoreCopiesTouchedShardOnInsert) {
  ShardedEmm store = BuildStore(4);
  const Bytes image = store.SerializeV2(1, 1);
  const std::string path = WriteTempImage(image, "cow");
  auto mapped = ShardedEmm::OpenMapped(path);
  ASSERT_TRUE(mapped.ok());
  const uint64_t mapped_before = mapped->MappedBytes();
  ASSERT_GT(mapped_before, 0u);

  Label label{};
  label[15] = 0x01;  // routes to one specific shard
  const Bytes value(40, 0xab);
  mapped->Insert(label, ConstByteSpan(value.data(), value.size()));

  // Exactly the touched shard moved to heap; the rest still serve off the
  // mapping.
  EXPECT_LT(mapped->MappedBytes(), mapped_before);
  EXPECT_GT(mapped->MappedBytes(), 0u);
  EXPECT_GT(mapped->HeapBytes(), 0u);
  EXPECT_EQ(mapped->EntryCount(), store.EntryCount() + 1);
  std::remove(path.c_str());
}

TEST(ShardedEmmV2Test, PrefaultedOpenServesIdentically) {
  ShardedEmm store = BuildStore(2);
  const Bytes image = store.SerializeV2(1, 1);
  const std::string path = WriteTempImage(image, "prefault");
  V2OpenOptions vopts;
  vopts.prefault = true;
  auto mapped = ShardedEmm::OpenMapped(path, vopts);
  ASSERT_TRUE(mapped.ok());
  EXPECT_EQ(mapped->EntryCount(), store.EntryCount());
  std::remove(path.c_str());
}

TEST(ShardedEmmV2Test, HostileHeaderMatrixRejectsCleanly) {
  ShardedEmm store = BuildStore(2, 8, 3);
  const Bytes image = store.SerializeV2(1, 1);
  const auto open = [](const Bytes& img) {
    return ShardedEmm::LoadV2(ConstByteSpan(img.data(), img.size()),
                              /*threads=*/1, /*verify_checksums=*/true);
  };

  {  // wrong magic
    Bytes bad = image;
    bad[0] ^= 0xff;
    EXPECT_FALSE(open(bad).ok());
  }
  {  // unsupported version
    Bytes bad = image;
    StoreU32Le(bad.data() + 8, 3);
    FixV2HeaderCrc(bad);
    EXPECT_FALSE(open(bad).ok());
  }
  {  // zero shards
    Bytes bad = image;
    StoreU32Le(bad.data() + 24, 0);
    EXPECT_FALSE(open(bad).ok());
  }
  {  // implausible shard count (also walks the table past the image)
    Bytes bad = image;
    StoreU32Le(bad.data() + 24, 1u << 20);
    EXPECT_FALSE(open(bad).ok());
  }
  {  // header checksum mismatch
    Bytes bad = image;
    StoreU64Le(bad.data() + 16, 999);  // epoch tampered, CRC not fixed
    EXPECT_FALSE(open(bad).ok());
  }
  {  // totals disagree with the section table
    Bytes bad = image;
    StoreU64Le(bad.data() + 32, LoadU64Le(bad.data() + 32) + 1);
    FixV2HeaderCrc(bad);
    EXPECT_FALSE(open(bad).ok());
  }
  {  // image not a page multiple
    Bytes bad = image;
    bad.push_back(0);
    EXPECT_FALSE(open(bad).ok());
  }
  {  // trailing full page after the last section
    Bytes bad = image;
    bad.resize(bad.size() + 4096, 0);
    EXPECT_FALSE(open(bad).ok());
  }
  {  // too short to hold a header at all
    Bytes bad(image.begin(), image.begin() + 64);
    EXPECT_FALSE(open(bad).ok());
  }
}

TEST(ShardedEmmV2Test, HostileSectionMatrixRejectsCleanly) {
  ShardedEmm store = BuildStore(2, 8, 3);
  const Bytes image = store.SerializeV2(1, 1);
  const auto open = [](const Bytes& img) {
    return ShardedEmm::LoadV2(ConstByteSpan(img.data(), img.size()),
                              /*threads=*/1, /*verify_checksums=*/true);
  };
  // Section-table entry layout: u64 slots_at, u64 slots_bytes, u64
  // arena_at, u64 arena_bytes, u64 entries, u32+u32 CRCs, at 48 + 48*s.
  {  // unaligned slot offset
    Bytes bad = image;
    StoreU64Le(bad.data() + 48, LoadU64Le(bad.data() + 48) + 1);
    FixV2HeaderCrc(bad);
    EXPECT_FALSE(open(bad).ok());
  }
  {  // overlapping sections: arena aliased onto the slot table
    Bytes bad = image;
    StoreU64Le(bad.data() + 48 + 16, LoadU64Le(bad.data() + 48));
    FixV2HeaderCrc(bad);
    EXPECT_FALSE(open(bad).ok());
  }
  {  // slot section length out of bounds
    Bytes bad = image;
    StoreU64Le(bad.data() + 48 + 8, bad.size());
    FixV2HeaderCrc(bad);
    EXPECT_FALSE(open(bad).ok());
  }
  {  // arena length out of bounds (and u64-overflow bait)
    Bytes bad = image;
    StoreU64Le(bad.data() + 48 + 24, ~uint64_t{0} - 4096);
    FixV2HeaderCrc(bad);
    EXPECT_FALSE(open(bad).ok());
  }
  {  // truncated arena: the last section's tail cut off
    Bytes bad = image;
    bad.resize(bad.size() - 4096);
    EXPECT_FALSE(open(bad).ok());
  }
  {  // entries exceeding half the slot capacity (view load-factor bound)
    Bytes bad = image;
    const uint64_t capacity = LoadU64Le(bad.data() + 48 + 8) / 32;
    StoreU64Le(bad.data() + 48 + 32, capacity);
    // keep the header totals consistent so the structural check is the
    // one that fires
    uint64_t total = 0;
    for (size_t s = 0; s < 2; ++s) {
      total += LoadU64Le(bad.data() + 48 + 48 * s + 32);
    }
    StoreU64Le(bad.data() + 32, total);
    FixV2HeaderCrc(bad);
    EXPECT_FALSE(open(bad).ok());
  }
  {  // per-section CRC mismatch: flip one arena byte
    Bytes bad = image;
    const uint64_t arena_at = LoadU64Le(bad.data() + 48 + 16);
    bad[arena_at] ^= 0xff;
    EXPECT_FALSE(open(bad).ok());
    // ... which only the checksum pass catches; the lazy open accepts the
    // image (the flipped byte is an opaque ciphertext byte) and must still
    // probe without faulting.
    auto lazy = ShardedEmm::LoadV2(ConstByteSpan(bad.data(), bad.size()),
                                   /*threads=*/1,
                                   /*verify_checksums=*/false);
    ASSERT_TRUE(lazy.ok());
    EXPECT_EQ(lazy->EntryCount(), store.EntryCount());
  }
}

TEST(ShardedEmmV2Test, HostileHeaderByteFlipMatrixNeverCrashes) {
  // Every single-byte flip in the header page either rejects cleanly or
  // (flips inside the zero padding) loads a store equal to the original.
  // Never UB — this test earns its keep under ASan.
  ShardedEmm store = BuildStore(2, 4, 2);
  const Bytes image = store.SerializeV2(1, 1);
  const size_t entries = store.EntryCount();
  for (size_t pos = 0; pos < 4096; ++pos) {
    Bytes bad = image;
    bad[pos] ^= 0x01;
    auto loaded = ShardedEmm::LoadV2(ConstByteSpan(bad.data(), bad.size()),
                                     /*threads=*/1,
                                     /*verify_checksums=*/true);
    if (loaded.ok()) {
      EXPECT_EQ(loaded->EntryCount(), entries) << "byte " << pos;
    }
  }
}

TEST(ShardedEmmV2Test, OpenMappedRejectsMissingAndEmptyFiles) {
  EXPECT_FALSE(
      ShardedEmm::OpenMapped("/nonexistent/rsse-v2-image.img").ok());
  const std::string path = WriteTempImage(Bytes{}, "empty");
  EXPECT_FALSE(ShardedEmm::OpenMapped(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rsse::shard
