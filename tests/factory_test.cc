#include "rsse/factory.h"

#include <set>
#include <string>

#include <gtest/gtest.h>

namespace rsse {
namespace {

TEST(FactoryTest, ProducesEverySchemeWithMatchingId) {
  for (SchemeId id : AllSchemeIds()) {
    std::unique_ptr<RangeScheme> scheme = MakeScheme(id, 1);
    ASSERT_NE(scheme, nullptr) << SchemeName(id);
    EXPECT_EQ(scheme->id(), id) << SchemeName(id);
  }
}

TEST(FactoryTest, NaivePerValueConstructible) {
  std::unique_ptr<RangeScheme> scheme = MakeScheme(SchemeId::kNaivePerValue, 1);
  ASSERT_NE(scheme, nullptr);
  EXPECT_EQ(scheme->id(), SchemeId::kNaivePerValue);
}

TEST(FactoryTest, PbIsNotProducedHere) {
  // Module layering: the baseline comes from pb::MakePbScheme.
  EXPECT_EQ(MakeScheme(SchemeId::kPb, 1), nullptr);
}

TEST(FactoryTest, AllSchemeIdsAreTableOneSchemes) {
  std::vector<SchemeId> ids = AllSchemeIds();
  EXPECT_EQ(ids.size(), 7u);
  std::set<SchemeId> unique(ids.begin(), ids.end());
  EXPECT_EQ(unique.size(), ids.size());
  EXPECT_EQ(unique.count(SchemeId::kPb), 0u);
  EXPECT_EQ(unique.count(SchemeId::kNaivePerValue), 0u);
}

TEST(FactoryTest, SchemeNamesAreUniqueAndNonEmpty) {
  std::set<std::string> names;
  std::vector<SchemeId> ids = AllSchemeIds();
  ids.push_back(SchemeId::kPb);
  ids.push_back(SchemeId::kNaivePerValue);
  for (SchemeId id : ids) {
    std::string name = SchemeName(id);
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
  }
}

TEST(FactoryTest, FreshSchemesAreIndependent) {
  // Two instances of the same scheme use fresh keys: an index built by one
  // is not searchable by the other (different Setup output).
  Dataset data(Domain{16}, {{1, 3}});
  auto a = MakeScheme(SchemeId::kLogarithmicBrc, 1);
  auto b = MakeScheme(SchemeId::kLogarithmicBrc, 1);
  ASSERT_TRUE(a->Build(data).ok());
  ASSERT_TRUE(b->Build(data).ok());
  // Both answer their own queries correctly.
  EXPECT_EQ(a->Query(Range{0, 15})->ids, std::vector<uint64_t>{1});
  EXPECT_EQ(b->Query(Range{0, 15})->ids, std::vector<uint64_t>{1});
}

}  // namespace
}  // namespace rsse
