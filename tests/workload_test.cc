#include "data/workload.h"

#include <gtest/gtest.h>

namespace rsse {
namespace {

TEST(WorkloadTest, RandomRangesHaveExactSize) {
  Rng rng(1);
  Domain domain{1000};
  for (const Range& r : RandomRangesOfSize(domain, 17, 200, rng)) {
    EXPECT_EQ(r.Size(), 17u);
    EXPECT_LT(r.hi, domain.size);
  }
}

TEST(WorkloadTest, RangeSizeClampedToDomain) {
  Rng rng(1);
  Domain domain{100};
  for (const Range& r : RandomRangesOfSize(domain, 5000, 10, rng)) {
    EXPECT_EQ(r.Size(), domain.size);
    EXPECT_EQ(r.lo, 0u);
  }
}

TEST(WorkloadTest, ZeroSizeBecomesSingleton) {
  Rng rng(1);
  Domain domain{100};
  for (const Range& r : RandomRangesOfSize(domain, 0, 10, rng)) {
    EXPECT_EQ(r.Size(), 1u);
  }
}

TEST(WorkloadTest, FractionProducesProportionalSize) {
  Rng rng(2);
  Domain domain{10000};
  for (const Range& r : RandomRangesOfFraction(domain, 0.25, 50, rng)) {
    EXPECT_EQ(r.Size(), 2500u);
  }
}

TEST(WorkloadTest, RangePositionsVary) {
  Rng rng(3);
  std::vector<Range> ranges = RandomRangesOfSize(Domain{1 << 20}, 10, 100, rng);
  bool all_same = true;
  for (const Range& r : ranges) {
    if (r.lo != ranges.front().lo) all_same = false;
  }
  EXPECT_FALSE(all_same);
}

TEST(WorkloadTest, NonIntersectingRangesAreDisjoint) {
  Rng rng(4);
  Domain domain{1024};
  std::vector<Range> ranges = NonIntersectingRanges(domain, 16, 32, rng);
  EXPECT_EQ(ranges.size(), 32u);
  for (size_t i = 0; i < ranges.size(); ++i) {
    EXPECT_EQ(ranges[i].Size(), 16u);
    for (size_t j = i + 1; j < ranges.size(); ++j) {
      EXPECT_FALSE(ranges[i].Intersects(ranges[j]))
          << "ranges " << i << " and " << j << " intersect";
    }
  }
}

TEST(WorkloadTest, NonIntersectingCappedBySlots) {
  Rng rng(5);
  Domain domain{100};
  // Only 10 slots of size 10 exist.
  std::vector<Range> ranges = NonIntersectingRanges(domain, 10, 50, rng);
  EXPECT_EQ(ranges.size(), 10u);
}

}  // namespace
}  // namespace rsse
