// Client failure handling under a fake clock: the jittered exponential
// backoff schedule, the retry cap, transparent reconnect after a lost
// connection, and the per-request deadline — all deterministic, no real
// sleeps, driven against dead ports and scripted peers.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "server/backoff.h"
#include "server/client.h"
#include "server/server.h"

namespace rsse::server {
namespace {

/// Records every sleep instead of sleeping; time advances by the slept
/// amount, so deadline math behaves as if the waits were real.
class FakeClock : public Clock {
 public:
  int64_t NowMillis() override { return now_ms_; }
  void SleepMillis(int64_t ms) override {
    sleeps.push_back(ms);
    now_ms_ += ms;
  }

  std::vector<int64_t> sleeps;

 private:
  int64_t now_ms_ = 1000;
};

/// Binds an ephemeral port, then closes the socket: connecting to it is
/// refused immediately (nothing re-binds a just-released ephemeral port
/// mid-test), so every retry fails fast without real waiting.
uint16_t DeadPort() {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  close(fd);
  return ntohs(addr.sin_port);
}

TEST(BackoffTest, DelaysGrowExponentiallyWithinJitterBounds) {
  BackoffPolicy policy;
  policy.initial_delay_ms = 100;
  policy.max_delay_ms = 1000;
  policy.multiplier = 2.0;
  policy.jitter = 0.2;
  policy.max_retries = 6;
  Backoff backoff(policy, /*seed=*/42);

  // Base sequence 100, 200, 400, 800, 1000 (capped), 1000; each delay
  // lands within ±20% of its base.
  const int64_t bases[] = {100, 200, 400, 800, 1000, 1000};
  for (int64_t base : bases) {
    const int64_t d = backoff.NextDelayMillis();
    EXPECT_GE(d, base * 8 / 10) << "base " << base;
    EXPECT_LE(d, base * 12 / 10) << "base " << base;
  }
  EXPECT_TRUE(backoff.Exhausted());
}

TEST(BackoffTest, ZeroJitterIsDeterministic) {
  BackoffPolicy policy;
  policy.initial_delay_ms = 50;
  policy.max_delay_ms = 400;
  policy.multiplier = 2.0;
  policy.jitter = 0.0;
  Backoff backoff(policy);
  EXPECT_EQ(backoff.NextDelayMillis(), 50);
  EXPECT_EQ(backoff.NextDelayMillis(), 100);
  EXPECT_EQ(backoff.NextDelayMillis(), 200);
  EXPECT_EQ(backoff.NextDelayMillis(), 400);
  EXPECT_EQ(backoff.NextDelayMillis(), 400);
}

TEST(BackoffTest, DistinctSeedsProduceDistinctSchedules) {
  BackoffPolicy policy;
  policy.jitter = 0.2;
  Backoff a(policy, 1), b(policy, 2);
  bool differed = false;
  for (int i = 0; i < 4; ++i) {
    if (a.NextDelayMillis() != b.NextDelayMillis()) differed = true;
  }
  EXPECT_TRUE(differed);
}

TEST(ClientRetryClockTest, RetriesThenReportsAfterCapAgainstDeadPort) {
  ClientOptions options;
  options.backoff.initial_delay_ms = 10;
  options.backoff.max_delay_ms = 80;
  options.backoff.jitter = 0.0;
  options.backoff.max_retries = 3;
  FakeClock clock;
  EmmClient client(options, &clock);
  // The endpoint is recorded even though this first dial fails, giving
  // the retry loop something to redial.
  EXPECT_FALSE(client.Connect("127.0.0.1", DeadPort()).ok());

  auto stats = client.Stats();
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kUnavailable)
      << stats.status().ToString();
  // 1 initial attempt + 3 retries, each separated by a recorded sleep.
  ASSERT_EQ(clock.sleeps.size(), 3u);
  EXPECT_EQ(clock.sleeps[0], 10);
  EXPECT_EQ(clock.sleeps[1], 20);
  EXPECT_EQ(clock.sleeps[2], 40);
}

TEST(ClientRetryClockTest, DeadlineCutsTheScheduleShort) {
  ClientOptions options;
  options.backoff.initial_delay_ms = 40;
  options.backoff.jitter = 0.0;
  options.backoff.max_retries = 50;
  options.request_deadline_ms = 100;
  FakeClock clock;
  EmmClient client(options, &clock);
  EXPECT_FALSE(client.Connect("127.0.0.1", DeadPort()).ok());

  auto stats = client.Stats();
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(stats.status().message().find("deadline"), std::string::npos)
      << stats.status().ToString();
  // Far fewer than 50 sleeps fit into the 100 ms budget; every sleep is
  // clamped so the total never overshoots it.
  int64_t slept = 0;
  for (int64_t s : clock.sleeps) slept += s;
  EXPECT_LE(slept, 100);
  EXPECT_LT(clock.sleeps.size(), 5u);
}

TEST(ClientRetryClockTest, NoRetryFailsOnFirstUnavailable) {
  ClientOptions options;
  options.retry_idempotent = false;
  FakeClock clock;
  EmmClient client(options, &clock);
  EXPECT_FALSE(client.Connect("127.0.0.1", DeadPort()).ok());
  auto stats = client.Stats();
  ASSERT_FALSE(stats.ok());
  EXPECT_TRUE(clock.sleeps.empty());
  EXPECT_EQ(client.ReconnectCount(), 0u);
}

TEST(ClientRetryClockTest, NeverConnectedClientStillFailsFast) {
  // Retry must not invent an endpoint: without a Connect there is nothing
  // to redial, and the caller gets the legacy "not connected".
  EmmClient client;
  auto stats = client.Stats();
  ASSERT_FALSE(stats.ok());
  EXPECT_NE(stats.status().message().find("not connected"),
            std::string::npos);
}

TEST(ClientRetryTest, ReconnectsAfterServerRestartOnSamePort) {
  // Real end-to-end retry: a server dies after the client connected; a
  // new one takes over the same port; the client's next idempotent
  // request transparently reconnects and succeeds.
  ServerOptions options;
  options.port = 0;
  EmmServer first(options);
  ASSERT_TRUE(first.Listen().ok());
  const uint16_t port = first.port();
  std::thread serve_first([&first] { EXPECT_TRUE(first.Serve().ok()); });

  ClientOptions copts;
  copts.backoff.initial_delay_ms = 1;
  copts.backoff.max_retries = 8;
  EmmClient client(copts);
  ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());
  ASSERT_TRUE(client.Stats().ok());

  first.Shutdown();
  serve_first.join();

  ServerOptions second_options;
  second_options.port = port;
  EmmServer second(second_options);
  ASSERT_TRUE(second.Listen().ok());
  std::thread serve_second([&second] { EXPECT_TRUE(second.Serve().ok()); });

  auto stats = client.Stats();
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(client.ReconnectCount(), 1u);

  second.Shutdown();
  serve_second.join();
}

}  // namespace
}  // namespace rsse::server
