// Kill-and-restart conformance: for every scheme in the family, host its
// exported stores on a --data-dir server, destroy the server without any
// drain (the in-process stand-in for SIGKILL — nothing is flushed beyond
// what each request already fsync'd), boot a fresh server from the same
// directory, and require the remote id sets to equal the local backend's
// for every range. Also covers recovery with injected torn snapshots and
// WAL tails: the restarted server serves exactly the last durable prefix.

#include <algorithm>
#include <dirent.h>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generators.h"
#include "pb/pb_scheme.h"
#include "rsse/factory.h"
#include "rsse/scheme.h"
#include "server/client.h"
#include "server/remote_backend.h"
#include "server/server.h"

namespace rsse {
namespace {

class TempDir {
 public:
  TempDir() {
    std::string tmpl = ::testing::TempDir() + "rsse_restart_XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    EXPECT_NE(mkdtemp(buf.data()), nullptr);
    path_ = buf.data();
  }

  ~TempDir() {
    DIR* d = opendir(path_.c_str());
    if (d != nullptr) {
      while (dirent* entry = readdir(d)) {
        const std::string name = entry->d_name;
        if (name != "." && name != "..") {
          unlink((path_ + "/" + name).c_str());
        }
      }
      closedir(d);
    }
    rmdir(path_.c_str());
  }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

class LoopbackServer {
 public:
  explicit LoopbackServer(server::ServerOptions options) : server_(options) {
    Status s = server_.Listen();
    EXPECT_TRUE(s.ok()) << s.ToString();
    thread_ = std::thread([this] {
      Status serve = server_.Serve();
      EXPECT_TRUE(serve.ok()) << serve.ToString();
    });
  }

  /// Graceful drain (the SIGTERM path): folds mapped-store deltas. The
  /// destructor without this is the crash path — nothing beyond the
  /// per-request fsyncs survives.
  void Drain() {
    server_.BeginDrain();
    if (thread_.joinable()) thread_.join();
  }

  ~LoopbackServer() {
    server_.Shutdown();
    if (thread_.joinable()) thread_.join();
  }

  uint16_t port() const { return server_.port(); }
  const server::EmmServer::RecoveryStats& recovery_stats() const {
    return server_.recovery_stats();
  }
  std::vector<server::EmmServer::StoreMemoryInfo> store_memory() const {
    return server_.StoreMemory();
  }

 private:
  server::EmmServer server_;
  std::thread thread_;
};

std::vector<uint64_t> Sorted(std::vector<uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

std::unique_ptr<RangeScheme> Make(SchemeId id) {
  if (id == SchemeId::kPb) return pb::MakePbScheme(/*rng_seed=*/11);
  return MakeScheme(id, /*rng_seed=*/11);
}

std::vector<SchemeId> AllServableSchemeIds() {
  std::vector<SchemeId> ids = AllSchemeIds();
  ids.push_back(SchemeId::kPb);
  ids.push_back(SchemeId::kNaivePerValue);
  return ids;
}

/// Scheme crossed with the serving substrate: every conformance case runs
/// once heap-loaded and once mapped off the v2 snapshot, and the answers
/// must be identical.
using RestartParam = std::tuple<SchemeId, bool>;

std::string RestartParamName(
    const ::testing::TestParamInfo<RestartParam>& info) {
  std::string name = SchemeName(std::get<0>(info.param));
  for (char& c : name) {
    if (!isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name + (std::get<1>(info.param) ? "_mmap" : "_heap");
}

class RestartConformanceTest
    : public ::testing::TestWithParam<RestartParam> {};

TEST_P(RestartConformanceTest, RestartedServerAnswersLikeLocal) {
  const SchemeId scheme_id = std::get<0>(GetParam());
  const bool mmap = std::get<1>(GetParam());
  Rng rng(17);
  Dataset data = GenerateUspsLike(/*n=*/60, /*domain_size=*/32, rng);
  std::unique_ptr<RangeScheme> scheme = Make(scheme_id);
  ASSERT_NE(scheme, nullptr);
  ASSERT_TRUE(scheme->Build(data).ok());
  Result<ServerSetup> setup = scheme->ExportServerSetup();
  ASSERT_TRUE(setup.ok()) << setup.status().ToString();

  TempDir dir;
  server::ServerOptions options;
  options.port = 0;
  options.data_dir = dir.path();
  options.mmap_stores = mmap ? 1 : 0;

  // Generation 1: install the stores, answer one query, die abruptly
  // (destructor path — nothing beyond the per-request fsyncs survives).
  {
    LoopbackServer loopback(options);
    server::EmmClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", loopback.port()).ok());
    Status installed = server::InstallServerSetup(client, *setup);
    ASSERT_TRUE(installed.ok()) << installed.ToString();
    server::RemoteBackend remote(client);
    Result<QueryResult> warm = scheme->QueryVia(remote, Range{0, 31});
    ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  }

  // Generation 2: nothing is re-shipped; the store table must come back
  // from disk alone.
  LoopbackServer restarted(options);
  EXPECT_EQ(restarted.recovery_stats().stores_recovered,
            setup->stores.size());
  server::EmmClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", restarted.port()).ok());
  server::RemoteBackend remote(client);

  if (mmap) {
    // The restarted server must actually serve off the mapping for at
    // least one encrypted-dictionary store (filter trees stay heap).
    uint64_t mapped_total = 0;
    for (const auto& mem : restarted.store_memory()) {
      mapped_total += mem.mapped_bytes;
    }
    if (scheme_id != SchemeId::kPb) {
      EXPECT_GT(mapped_total, 0u) << "mmap mode served entirely from heap";
    }
  }

  for (uint64_t lo = 0; lo < 32; lo += 5) {
    for (uint64_t hi = lo; hi < 32; hi += 6) {
      const Range r{lo, hi};
      Result<QueryResult> local = scheme->Query(r);
      ASSERT_TRUE(local.ok()) << local.status().ToString();
      Result<QueryResult> wire = scheme->QueryVia(remote, r);
      ASSERT_TRUE(wire.ok()) << wire.status().ToString();
      EXPECT_EQ(Sorted(wire->ids), Sorted(local->ids))
          << SchemeName(scheme_id) << " range [" << lo << "," << hi << "]";
      EXPECT_EQ(wire->rounds, local->rounds);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    EveryScheme, RestartConformanceTest,
    ::testing::Combine(::testing::ValuesIn(AllServableSchemeIds()),
                       ::testing::Bool()),
    RestartParamName);

TEST(RestartUpdateTest, AckedUpdatesSurviveUncleanRestart) {
  // Updates ride the WAL, not the snapshot: an acked batch must be
  // answerable after an unclean restart, and the entry count must match
  // exactly (no lost and no doubled batches).
  TempDir dir;
  server::ServerOptions options;
  options.port = 0;
  options.data_dir = dir.path();
  options.shards = 2;

  constexpr int kBatches = 5;
  {
    LoopbackServer loopback(options);
    server::EmmClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", loopback.port()).ok());
    for (int b = 0; b < kBatches; ++b) {
      std::vector<std::pair<Label, Bytes>> entries;
      Label label;
      label.fill(static_cast<uint8_t>(0x30 + b));
      entries.emplace_back(label, Bytes(24, static_cast<uint8_t>(b)));
      auto resp = client.Update(entries);
      ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    }
  }

  LoopbackServer restarted(options);
  EXPECT_EQ(restarted.recovery_stats().wal_records_applied,
            static_cast<size_t>(kBatches));
  server::EmmClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", restarted.port()).ok());
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->entries, static_cast<uint64_t>(kBatches));
}

TEST(RestartUpdateTest, SnapshotPlusWalComposeAcrossRestart) {
  // SetupStore then Update then crash: recovery must load the snapshot
  // and replay the WAL on top, answering both old and new keywords.
  Rng rng(23);
  Dataset data = GenerateUniform(/*n=*/40, /*domain_size=*/32, rng);
  std::unique_ptr<RangeScheme> scheme = Make(SchemeId::kLogarithmicBrc);
  ASSERT_TRUE(scheme->Build(data).ok());
  Result<ServerSetup> setup = scheme->ExportServerSetup();
  ASSERT_TRUE(setup.ok());

  TempDir dir;
  server::ServerOptions options;
  options.port = 0;
  options.data_dir = dir.path();

  uint64_t entries_after_update = 0;
  {
    LoopbackServer loopback(options);
    server::EmmClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", loopback.port()).ok());
    ASSERT_TRUE(server::InstallServerSetup(client, *setup).ok());
    std::vector<std::pair<Label, Bytes>> entries;
    Label label;
    label.fill(0x77);
    entries.emplace_back(label, Bytes(40, 0x09));
    auto resp = client.Update(entries);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    entries_after_update = resp->entries;
  }

  LoopbackServer restarted(options);
  server::EmmClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", restarted.port()).ok());
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->entries, entries_after_update);

  // The range protocol still answers exactly from the recovered base.
  server::RemoteBackend remote(client);
  const Range r{3, 29};
  Result<QueryResult> local = scheme->Query(r);
  ASSERT_TRUE(local.ok());
  Result<QueryResult> wire = scheme->QueryVia(remote, r);
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  EXPECT_EQ(Sorted(wire->ids), Sorted(local->ids));
}

TEST(RestartMmapTest, V1SnapshotMigratesToV2OnFirstMmapBoot) {
  // A data dir written by a heap-serving generation must keep working
  // when the operator flips --mmap=on: the first mmap boot heap-loads the
  // v1 snapshot (replaying its WAL), re-persists it as v2, and the boot
  // after that maps it.
  Rng rng(29);
  Dataset data = GenerateUniform(/*n=*/40, /*domain_size=*/32, rng);
  std::unique_ptr<RangeScheme> scheme = Make(SchemeId::kLogarithmicBrc);
  ASSERT_TRUE(scheme->Build(data).ok());
  Result<ServerSetup> setup = scheme->ExportServerSetup();
  ASSERT_TRUE(setup.ok());

  TempDir dir;
  server::ServerOptions options;
  options.port = 0;
  options.data_dir = dir.path();

  uint64_t entries_after_update = 0;
  {
    options.mmap_stores = 0;  // v1-era generation
    LoopbackServer loopback(options);
    server::EmmClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", loopback.port()).ok());
    ASSERT_TRUE(server::InstallServerSetup(client, *setup).ok());
    std::vector<std::pair<Label, Bytes>> entries;
    Label label;
    label.fill(0x66);
    entries.emplace_back(label, Bytes(40, 0x05));
    auto resp = client.Update(entries);
    ASSERT_TRUE(resp.ok());
    entries_after_update = resp->entries;
  }

  options.mmap_stores = 1;
  {
    // Migration boot: still answers from heap (the v1 load), but leaves a
    // v2 snapshot behind — WAL records folded in, WAL truncated.
    LoopbackServer migrator(options);
    server::EmmClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", migrator.port()).ok());
    auto stats = client.Stats();
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->entries, entries_after_update);
    EXPECT_EQ(stats->snapshot_format, 2u);
  }

  LoopbackServer mapped(options);
  EXPECT_EQ(mapped.recovery_stats().wal_records_applied, 0u)
      << "migration must fold the WAL into the v2 snapshot";
  uint64_t mapped_total = 0;
  for (const auto& mem : mapped.store_memory()) {
    mapped_total += mem.mapped_bytes;
  }
  EXPECT_GT(mapped_total, 0u);
  server::EmmClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", mapped.port()).ok());
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->entries, entries_after_update);
  EXPECT_EQ(stats->snapshot_format, 2u);
  EXPECT_GT(stats->mapped_bytes, 0u);
  server::RemoteBackend remote(client);
  const Range r{2, 27};
  Result<QueryResult> local = scheme->Query(r);
  ASSERT_TRUE(local.ok());
  Result<QueryResult> wire = scheme->QueryVia(remote, r);
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  EXPECT_EQ(Sorted(wire->ids), Sorted(local->ids));
}

TEST(RestartMmapTest, CleanDrainFoldsMappedDeltasIntoFreshSnapshot) {
  // mmap serving with live updates: the touched shards ride the WAL until
  // a *clean* drain folds them back into a v2 snapshot, so the successor
  // boots O(1) again with zero WAL replay.
  Rng rng(31);
  Dataset data = GenerateUniform(/*n=*/40, /*domain_size=*/32, rng);
  std::unique_ptr<RangeScheme> scheme = Make(SchemeId::kConstantBrc);
  ASSERT_TRUE(scheme->Build(data).ok());
  Result<ServerSetup> setup = scheme->ExportServerSetup();
  ASSERT_TRUE(setup.ok());

  TempDir dir;
  server::ServerOptions options;
  options.port = 0;
  options.data_dir = dir.path();
  options.mmap_stores = 1;

  uint64_t entries_after_update = 0;
  {
    LoopbackServer loopback(options);
    server::EmmClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", loopback.port()).ok());
    ASSERT_TRUE(server::InstallServerSetup(client, *setup).ok());
    std::vector<std::pair<Label, Bytes>> entries;
    Label label;
    label.fill(0x55);
    entries.emplace_back(label, Bytes(40, 0x04));
    auto resp = client.Update(entries);
    ASSERT_TRUE(resp.ok());
    entries_after_update = resp->entries;
    client.Close();
    loopback.Drain();  // the graceful path: fold happens here
  }

  LoopbackServer restarted(options);
  EXPECT_EQ(restarted.recovery_stats().wal_records_applied, 0u)
      << "the drain fold must truncate the WAL";
  server::EmmClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", restarted.port()).ok());
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->entries, entries_after_update);
  EXPECT_EQ(stats->snapshot_format, 2u);
  EXPECT_GT(stats->mapped_bytes, 0u);
  EXPECT_EQ(stats->heap_bytes, 0u)
      << "a folded store must serve fully off the mapping";
  server::RemoteBackend remote(client);
  const Range r{0, 31};
  Result<QueryResult> local = scheme->Query(r);
  ASSERT_TRUE(local.ok());
  Result<QueryResult> wire = scheme->QueryVia(remote, r);
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  EXPECT_EQ(Sorted(wire->ids), Sorted(local->ids));
}

}  // namespace
}  // namespace rsse
