#include "sse/flat_label_map.h"

#include <algorithm>
#include <cstring>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace rsse::sse {
namespace {

Label MakeLabel(uint64_t hash_part, uint64_t tail_part = 0) {
  // First 8 bytes feed LabelHash; the tail distinguishes colliding labels.
  Label l{};
  for (int i = 0; i < 8; ++i) {
    l[static_cast<size_t>(i)] =
        static_cast<uint8_t>((hash_part >> (8 * i)) & 0xff);
    l[static_cast<size_t>(8 + i)] =
        static_cast<uint8_t>((tail_part >> (8 * i)) & 0xff);
  }
  return l;
}

Bytes ValueFor(uint64_t tag, size_t len = 32) {
  Bytes v(len);
  for (size_t i = 0; i < len; ++i) {
    v[i] = static_cast<uint8_t>((tag + i) & 0xff);
  }
  return v;
}

TEST(FlatLabelMapTest, InsertAndFind) {
  FlatLabelMap map;
  Bytes v1 = ValueFor(1);
  Bytes v2 = ValueFor(2, 48);
  map.Insert(MakeLabel(10), v1);
  map.Insert(MakeLabel(20), v2);
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(map.ValueBytes(), v1.size() + v2.size());
  auto f1 = map.Find(MakeLabel(10));
  ASSERT_TRUE(f1.has_value());
  EXPECT_EQ(Bytes(f1->begin(), f1->end()), v1);
  auto f2 = map.Find(MakeLabel(20));
  ASSERT_TRUE(f2.has_value());
  EXPECT_EQ(Bytes(f2->begin(), f2->end()), v2);
  EXPECT_FALSE(map.Find(MakeLabel(30)).has_value());
}

TEST(FlatLabelMapTest, EmptyMapFindsNothing) {
  FlatLabelMap map;
  EXPECT_EQ(map.size(), 0u);
  EXPECT_FALSE(map.Find(MakeLabel(1)).has_value());
}

TEST(FlatLabelMapTest, EmptyValuesAreIgnored) {
  FlatLabelMap map;
  map.Insert(MakeLabel(1), ConstByteSpan{});
  EXPECT_EQ(map.size(), 0u);
  EXPECT_FALSE(map.Find(MakeLabel(1)).has_value());
}

TEST(FlatLabelMapTest, CollidingHashesProbeCorrectly) {
  // Labels sharing the full 8-byte hash prefix land in the same slot chain;
  // linear probing must keep them all retrievable, with no tombstone-style
  // degradation (the table is insert-only).
  FlatLabelMap map;
  const uint64_t shared_hash = 0xdeadbeefcafef00dull;
  const size_t kColliders = 50;
  for (uint64_t t = 0; t < kColliders; ++t) {
    map.Insert(MakeLabel(shared_hash, t), ValueFor(t));
  }
  EXPECT_EQ(map.size(), kColliders);
  for (uint64_t t = 0; t < kColliders; ++t) {
    auto found = map.Find(MakeLabel(shared_hash, t));
    ASSERT_TRUE(found.has_value()) << "collider " << t;
    EXPECT_EQ(Bytes(found->begin(), found->end()), ValueFor(t));
  }
  // A colliding-but-absent label must miss.
  EXPECT_FALSE(map.Find(MakeLabel(shared_hash, kColliders + 1)).has_value());
}

TEST(FlatLabelMapTest, GrowthRehashPreservesAllEntries) {
  FlatLabelMap map;  // no Reserve: forces repeated rehashing
  const uint64_t kEntries = 10000;
  for (uint64_t i = 0; i < kEntries; ++i) {
    map.Insert(MakeLabel(i * 0x9e3779b97f4a7c15ull, i), ValueFor(i));
  }
  EXPECT_EQ(map.size(), kEntries);
  for (uint64_t i = 0; i < kEntries; ++i) {
    auto found = map.Find(MakeLabel(i * 0x9e3779b97f4a7c15ull, i));
    ASSERT_TRUE(found.has_value()) << "entry " << i;
    EXPECT_EQ((*found)[0], ValueFor(i)[0]);
  }
}

TEST(FlatLabelMapTest, DuplicateLabelOverwrites) {
  FlatLabelMap map;
  map.Insert(MakeLabel(7), ValueFor(1));
  map.Insert(MakeLabel(7), ValueFor(9, 64));
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.ValueBytes(), 64u);
  auto found = map.Find(MakeLabel(7));
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(Bytes(found->begin(), found->end()), ValueFor(9, 64));
}

TEST(FlatLabelMapTest, DuplicateOverwriteTracksLeakedBytes) {
  FlatLabelMap map;
  map.Insert(MakeLabel(7), ValueFor(1, 32));
  map.Insert(MakeLabel(8), ValueFor(2, 48));
  EXPECT_EQ(map.LeakedBytes(), 0u);
  map.Insert(MakeLabel(7), ValueFor(9, 64));
  // The 32 overwritten bytes are dead arena, not live value bytes.
  EXPECT_EQ(map.LeakedBytes(), 32u);
  EXPECT_EQ(map.ValueBytes(), 48u + 64u);
  EXPECT_EQ(map.ArenaBytes(), 32u + 48u + 64u);
  map.Insert(MakeLabel(7), ValueFor(3, 16));
  EXPECT_EQ(map.LeakedBytes(), 32u + 64u);
  EXPECT_EQ(map.ValueBytes(), 48u + 16u);
}

TEST(FlatLabelMapTest, V2SectionsCompactLeakedBytes) {
  FlatLabelMap map;
  map.Insert(MakeLabel(7), ValueFor(1, 32));
  map.Insert(MakeLabel(8), ValueFor(2, 48));
  map.Insert(MakeLabel(7), ValueFor(9, 64));  // leaks 32 arena bytes
  Bytes slots(map.V2SlotsBytes());
  Bytes arena(map.V2ArenaBytes());
  // Sizing == written: the emitted arena is exactly ValueBytes() long.
  const size_t written = map.WriteV2Sections(
      ByteSpan(slots.data(), slots.size()),
      ByteSpan(arena.data(), arena.size()));
  EXPECT_EQ(written, map.ValueBytes());
  EXPECT_EQ(written, 48u + 64u);
  auto view = FlatLabelMap::View(ConstByteSpan(slots.data(), slots.size()),
                                 ConstByteSpan(arena.data(), arena.size()),
                                 map.size(), map.ValueBytes());
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->LeakedBytes(), 0u);
  auto found = view->Find(MakeLabel(7));
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(Bytes(found->begin(), found->end()), ValueFor(9, 64));
}

// --------------------------------------------------------------------------
// Borrowed view mode over packed v2 sections.
// --------------------------------------------------------------------------

struct PackedSections {
  Bytes slots;
  Bytes arena;
  size_t entries = 0;
  size_t value_bytes = 0;
};

PackedSections Pack(const FlatLabelMap& map) {
  PackedSections p;
  p.slots.resize(map.V2SlotsBytes());
  p.arena.resize(map.V2ArenaBytes());
  map.WriteV2Sections(ByteSpan(p.slots.data(), p.slots.size()),
                      ByteSpan(p.arena.data(), p.arena.size()));
  p.entries = map.size();
  p.value_bytes = map.ValueBytes();
  return p;
}

Result<FlatLabelMap> ViewOf(const PackedSections& p) {
  return FlatLabelMap::View(
      ConstByteSpan(p.slots.data(), p.slots.size()),
      ConstByteSpan(p.arena.data(), p.arena.size()), p.entries,
      p.value_bytes);
}

TEST(FlatLabelMapViewTest, RoundTripFindsEveryEntry) {
  FlatLabelMap map;
  const uint64_t kEntries = 5000;
  for (uint64_t i = 0; i < kEntries; ++i) {
    map.Insert(MakeLabel(i * 0x9e3779b97f4a7c15ull, i),
               ValueFor(i, 32 + (i % 3) * 16));
  }
  PackedSections p = Pack(map);
  auto view = ViewOf(p);
  ASSERT_TRUE(view.ok());
  EXPECT_TRUE(view->IsView());
  EXPECT_EQ(view->size(), kEntries);
  EXPECT_EQ(view->MappedBytes(), p.slots.size() + p.arena.size());
  EXPECT_EQ(view->HeapBytes(), 0u);
  for (uint64_t i = 0; i < kEntries; ++i) {
    auto found = view->Find(MakeLabel(i * 0x9e3779b97f4a7c15ull, i));
    ASSERT_TRUE(found.has_value()) << "entry " << i;
    EXPECT_EQ(Bytes(found->begin(), found->end()),
              ValueFor(i, 32 + (i % 3) * 16));
  }
  EXPECT_FALSE(view->Find(MakeLabel(0xffffffffffffffffull)).has_value());
}

TEST(FlatLabelMapViewTest, ForEachMatchesHeapMap) {
  FlatLabelMap map;
  for (uint64_t i = 0; i < 500; ++i) {
    map.Insert(MakeLabel(i + 1, i), ValueFor(i));
  }
  PackedSections p = Pack(map);
  auto view = ViewOf(p);
  ASSERT_TRUE(view.ok());
  std::set<Bytes> heap_entries;
  map.ForEach([&](const Label& label, ConstByteSpan value) {
    Bytes rec(label.begin(), label.end());
    rec.insert(rec.end(), value.begin(), value.end());
    heap_entries.insert(std::move(rec));
  });
  std::set<Bytes> view_entries;
  view->ForEach([&](const Label& label, ConstByteSpan value) {
    Bytes rec(label.begin(), label.end());
    rec.insert(rec.end(), value.begin(), value.end());
    view_entries.insert(std::move(rec));
  });
  EXPECT_EQ(view_entries, heap_entries);
}

TEST(FlatLabelMapViewTest, MutationCopiesToHeap) {
  FlatLabelMap map;
  map.Insert(MakeLabel(1, 1), ValueFor(1));
  map.Insert(MakeLabel(2, 2), ValueFor(2));
  PackedSections p = Pack(map);
  auto view = ViewOf(p);
  ASSERT_TRUE(view.ok());
  ASSERT_TRUE(view->IsView());
  view->Insert(MakeLabel(3, 3), ValueFor(3));
  EXPECT_FALSE(view->IsView());
  EXPECT_EQ(view->MappedBytes(), 0u);
  EXPECT_GT(view->HeapBytes(), 0u);
  EXPECT_EQ(view->size(), 3u);
  for (uint64_t i = 1; i <= 3; ++i) {
    auto found = view->Find(MakeLabel(i, i));
    ASSERT_TRUE(found.has_value()) << "entry " << i;
    EXPECT_EQ(Bytes(found->begin(), found->end()), ValueFor(i));
  }
}

TEST(FlatLabelMapViewTest, EmptySectionsViewIsEmptyMap) {
  auto view = FlatLabelMap::View({}, {}, 0, 0);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->size(), 0u);
  EXPECT_FALSE(view->Find(MakeLabel(1)).has_value());
}

TEST(FlatLabelMapViewTest, RejectsStructurallyInvalidSections) {
  FlatLabelMap map;
  map.Insert(MakeLabel(1, 1), ValueFor(1));
  PackedSections p = Pack(map);
  // Slot table not a multiple of the record size.
  EXPECT_FALSE(FlatLabelMap::View(
                   ConstByteSpan(p.slots.data(), p.slots.size() - 1),
                   ConstByteSpan(p.arena.data(), p.arena.size()), p.entries,
                   p.value_bytes)
                   .ok());
  // Capacity not a power of two (3 records).
  Bytes odd(3 * FlatLabelMap::kSlotRecordBytes);
  EXPECT_FALSE(FlatLabelMap::View(ConstByteSpan(odd.data(), odd.size()),
                                  {}, 0, 0)
                   .ok());
  // Load factor above 1/2.
  EXPECT_FALSE(FlatLabelMap::View(
                   ConstByteSpan(p.slots.data(), p.slots.size()),
                   ConstByteSpan(p.arena.data(), p.arena.size()),
                   p.slots.size() / FlatLabelMap::kSlotRecordBytes,
                   p.value_bytes)
                   .ok());
  // Arena length disagrees with the claimed value bytes.
  EXPECT_FALSE(FlatLabelMap::View(
                   ConstByteSpan(p.slots.data(), p.slots.size()),
                   ConstByteSpan(p.arena.data(), p.arena.size() - 1),
                   p.entries, p.value_bytes)
                   .ok());
  // Entries claimed against an empty slot table.
  EXPECT_FALSE(FlatLabelMap::View({}, {}, 1, 0).ok());
}

TEST(FlatLabelMapViewTest, HostileRecordOffsetsMissWithoutOverread) {
  FlatLabelMap map;
  map.Insert(MakeLabel(1, 1), ValueFor(1));
  map.Insert(MakeLabel(2, 2), ValueFor(2));
  PackedSections p = Pack(map);
  // Point every record's offset past the arena: probes must miss (and
  // ForEach skip) rather than read out of bounds.
  for (size_t i = 0; i + FlatLabelMap::kSlotRecordBytes <= p.slots.size();
       i += FlatLabelMap::kSlotRecordBytes) {
    uint8_t* rec = p.slots.data() + i;
    const uint64_t bad_offset = p.arena.size() + 1;
    std::memcpy(rec + 16, &bad_offset, sizeof(bad_offset));
  }
  auto view = ViewOf(p);
  ASSERT_TRUE(view.ok());
  EXPECT_FALSE(view->Find(MakeLabel(1, 1)).has_value());
  size_t visits = 0;
  view->ForEach([&](const Label&, ConstByteSpan) { ++visits; });
  EXPECT_EQ(visits, 0u);
}

TEST(FlatLabelMapTest, InsertUninitWritesInPlace) {
  FlatLabelMap map;
  Bytes v = ValueFor(3, 40);
  ByteSpan dst = map.InsertUninit(MakeLabel(3), v.size());
  ASSERT_EQ(dst.size(), v.size());
  std::memcpy(dst.data(), v.data(), v.size());
  auto found = map.Find(MakeLabel(3));
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(Bytes(found->begin(), found->end()), v);
}

TEST(FlatLabelMapTest, ReserveAvoidsLaterGrowth) {
  FlatLabelMap map;
  map.Reserve(1000, 1000 * 32);
  for (uint64_t i = 0; i < 1000; ++i) {
    map.Insert(MakeLabel(i + 1, i), ValueFor(i));
  }
  EXPECT_EQ(map.size(), 1000u);
  EXPECT_EQ(map.ValueBytes(), 1000u * 32u);
}

TEST(FlatLabelMapTest, ForEachVisitsEveryEntryOnce) {
  FlatLabelMap map;
  std::set<uint64_t> expected;
  for (uint64_t i = 0; i < 100; ++i) {
    map.Insert(MakeLabel(i + 1, i), ValueFor(i));
    expected.insert(i + 1);
  }
  std::set<uint64_t> seen;
  size_t visits = 0;
  map.ForEach([&](const Label& label, ConstByteSpan value) {
    uint64_t hash_part = 0;
    for (int i = 7; i >= 0; --i) {
      hash_part = (hash_part << 8) | label[static_cast<size_t>(i)];
    }
    seen.insert(hash_part);
    EXPECT_EQ(value.size(), 32u);
    ++visits;
  });
  EXPECT_EQ(visits, 100u);
  EXPECT_EQ(seen, expected);
}

}  // namespace
}  // namespace rsse::sse
