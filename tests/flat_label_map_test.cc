#include "sse/flat_label_map.h"

#include <algorithm>
#include <cstring>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace rsse::sse {
namespace {

Label MakeLabel(uint64_t hash_part, uint64_t tail_part = 0) {
  // First 8 bytes feed LabelHash; the tail distinguishes colliding labels.
  Label l{};
  for (int i = 0; i < 8; ++i) {
    l[static_cast<size_t>(i)] =
        static_cast<uint8_t>((hash_part >> (8 * i)) & 0xff);
    l[static_cast<size_t>(8 + i)] =
        static_cast<uint8_t>((tail_part >> (8 * i)) & 0xff);
  }
  return l;
}

Bytes ValueFor(uint64_t tag, size_t len = 32) {
  Bytes v(len);
  for (size_t i = 0; i < len; ++i) {
    v[i] = static_cast<uint8_t>((tag + i) & 0xff);
  }
  return v;
}

TEST(FlatLabelMapTest, InsertAndFind) {
  FlatLabelMap map;
  Bytes v1 = ValueFor(1);
  Bytes v2 = ValueFor(2, 48);
  map.Insert(MakeLabel(10), v1);
  map.Insert(MakeLabel(20), v2);
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(map.ValueBytes(), v1.size() + v2.size());
  auto f1 = map.Find(MakeLabel(10));
  ASSERT_TRUE(f1.has_value());
  EXPECT_EQ(Bytes(f1->begin(), f1->end()), v1);
  auto f2 = map.Find(MakeLabel(20));
  ASSERT_TRUE(f2.has_value());
  EXPECT_EQ(Bytes(f2->begin(), f2->end()), v2);
  EXPECT_FALSE(map.Find(MakeLabel(30)).has_value());
}

TEST(FlatLabelMapTest, EmptyMapFindsNothing) {
  FlatLabelMap map;
  EXPECT_EQ(map.size(), 0u);
  EXPECT_FALSE(map.Find(MakeLabel(1)).has_value());
}

TEST(FlatLabelMapTest, EmptyValuesAreIgnored) {
  FlatLabelMap map;
  map.Insert(MakeLabel(1), ConstByteSpan{});
  EXPECT_EQ(map.size(), 0u);
  EXPECT_FALSE(map.Find(MakeLabel(1)).has_value());
}

TEST(FlatLabelMapTest, CollidingHashesProbeCorrectly) {
  // Labels sharing the full 8-byte hash prefix land in the same slot chain;
  // linear probing must keep them all retrievable, with no tombstone-style
  // degradation (the table is insert-only).
  FlatLabelMap map;
  const uint64_t shared_hash = 0xdeadbeefcafef00dull;
  const size_t kColliders = 50;
  for (uint64_t t = 0; t < kColliders; ++t) {
    map.Insert(MakeLabel(shared_hash, t), ValueFor(t));
  }
  EXPECT_EQ(map.size(), kColliders);
  for (uint64_t t = 0; t < kColliders; ++t) {
    auto found = map.Find(MakeLabel(shared_hash, t));
    ASSERT_TRUE(found.has_value()) << "collider " << t;
    EXPECT_EQ(Bytes(found->begin(), found->end()), ValueFor(t));
  }
  // A colliding-but-absent label must miss.
  EXPECT_FALSE(map.Find(MakeLabel(shared_hash, kColliders + 1)).has_value());
}

TEST(FlatLabelMapTest, GrowthRehashPreservesAllEntries) {
  FlatLabelMap map;  // no Reserve: forces repeated rehashing
  const uint64_t kEntries = 10000;
  for (uint64_t i = 0; i < kEntries; ++i) {
    map.Insert(MakeLabel(i * 0x9e3779b97f4a7c15ull, i), ValueFor(i));
  }
  EXPECT_EQ(map.size(), kEntries);
  for (uint64_t i = 0; i < kEntries; ++i) {
    auto found = map.Find(MakeLabel(i * 0x9e3779b97f4a7c15ull, i));
    ASSERT_TRUE(found.has_value()) << "entry " << i;
    EXPECT_EQ((*found)[0], ValueFor(i)[0]);
  }
}

TEST(FlatLabelMapTest, DuplicateLabelOverwrites) {
  FlatLabelMap map;
  map.Insert(MakeLabel(7), ValueFor(1));
  map.Insert(MakeLabel(7), ValueFor(9, 64));
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.ValueBytes(), 64u);
  auto found = map.Find(MakeLabel(7));
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(Bytes(found->begin(), found->end()), ValueFor(9, 64));
}

TEST(FlatLabelMapTest, InsertUninitWritesInPlace) {
  FlatLabelMap map;
  Bytes v = ValueFor(3, 40);
  ByteSpan dst = map.InsertUninit(MakeLabel(3), v.size());
  ASSERT_EQ(dst.size(), v.size());
  std::memcpy(dst.data(), v.data(), v.size());
  auto found = map.Find(MakeLabel(3));
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(Bytes(found->begin(), found->end()), v);
}

TEST(FlatLabelMapTest, ReserveAvoidsLaterGrowth) {
  FlatLabelMap map;
  map.Reserve(1000, 1000 * 32);
  for (uint64_t i = 0; i < 1000; ++i) {
    map.Insert(MakeLabel(i + 1, i), ValueFor(i));
  }
  EXPECT_EQ(map.size(), 1000u);
  EXPECT_EQ(map.ValueBytes(), 1000u * 32u);
}

TEST(FlatLabelMapTest, ForEachVisitsEveryEntryOnce) {
  FlatLabelMap map;
  std::set<uint64_t> expected;
  for (uint64_t i = 0; i < 100; ++i) {
    map.Insert(MakeLabel(i + 1, i), ValueFor(i));
    expected.insert(i + 1);
  }
  std::set<uint64_t> seen;
  size_t visits = 0;
  map.ForEach([&](const Label& label, ConstByteSpan value) {
    uint64_t hash_part = 0;
    for (int i = 7; i >= 0; --i) {
      hash_part = (hash_part << 8) | label[static_cast<size_t>(i)];
    }
    seen.insert(hash_part);
    EXPECT_EQ(value.size(), 32u);
    ++visits;
  });
  EXPECT_EQ(visits, 100u);
  EXPECT_EQ(seen, expected);
}

}  // namespace
}  // namespace rsse::sse
