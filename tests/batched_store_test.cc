#include "update/batched_store.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace rsse::update {
namespace {

UpdateOp Insert(uint64_t id, uint64_t attr) {
  return UpdateOp{UpdateOp::Type::kInsert, Record{id, attr}, 0};
}

UpdateOp Delete(uint64_t id, uint64_t attr) {
  return UpdateOp{UpdateOp::Type::kDelete, Record{id, attr}, 0};
}

std::vector<uint64_t> QueryIds(BatchedStore& store, Range r) {
  Result<QueryResult> q = store.Query(r);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return q->ids;  // already sorted by BatchedStore
}

TEST(BatchedStoreTest, InsertsAcrossBatchesAreQueryable) {
  BatchedStore store(SchemeId::kLogarithmicBrc, Domain{64}, /*step=*/3);
  ASSERT_TRUE(store.ApplyBatch({Insert(1, 10), Insert(2, 20)}).ok());
  ASSERT_TRUE(store.ApplyBatch({Insert(3, 15)}).ok());
  EXPECT_EQ(QueryIds(store, Range{10, 20}), (std::vector<uint64_t>{1, 2, 3}));
  EXPECT_EQ(QueryIds(store, Range{11, 19}), (std::vector<uint64_t>{3}));
}

TEST(BatchedStoreTest, DeleteHidesOlderInsert) {
  BatchedStore store(SchemeId::kLogarithmicBrc, Domain{64}, 3);
  ASSERT_TRUE(store.ApplyBatch({Insert(1, 10), Insert(2, 12)}).ok());
  ASSERT_TRUE(store.ApplyBatch({Delete(1, 10)}).ok());
  EXPECT_EQ(QueryIds(store, Range{0, 63}), (std::vector<uint64_t>{2}));
  EXPECT_EQ(store.LiveTupleCount(), 1u);
}

TEST(BatchedStoreTest, ModificationAsDeletePlusInsert) {
  BatchedStore store(SchemeId::kLogarithmicBrc, Domain{64}, 3);
  ASSERT_TRUE(store.ApplyBatch({Insert(1, 10)}).ok());
  // Move tuple 1 from 10 to 40: tombstone old, insert new id for new value.
  ASSERT_TRUE(store.ApplyBatch({Delete(1, 10), Insert(5, 40)}).ok());
  EXPECT_TRUE(QueryIds(store, Range{5, 15}).empty());
  EXPECT_EQ(QueryIds(store, Range{35, 45}), (std::vector<uint64_t>{5}));
}

TEST(BatchedStoreTest, ConsolidationTriggersAtStep) {
  BatchedStore store(SchemeId::kLogarithmicBrc, Domain{64}, /*step=*/3);
  ASSERT_TRUE(store.ApplyBatch({Insert(1, 1)}).ok());
  ASSERT_TRUE(store.ApplyBatch({Insert(2, 2)}).ok());
  EXPECT_EQ(store.ActiveInstanceCount(), 2u);
  EXPECT_EQ(store.ConsolidationCount(), 0u);
  // Third batch at level 0 triggers a merge into level 1.
  ASSERT_TRUE(store.ApplyBatch({Insert(3, 3)}).ok());
  EXPECT_EQ(store.ActiveInstanceCount(), 1u);
  EXPECT_EQ(store.ConsolidationCount(), 1u);
  EXPECT_EQ(QueryIds(store, Range{0, 63}), (std::vector<uint64_t>{1, 2, 3}));
}

TEST(BatchedStoreTest, HierarchicalConsolidationCascades) {
  BatchedStore store(SchemeId::kLogarithmicBrc, Domain{64}, /*step=*/2);
  // 4 batches with s=2: (b1 b2)->L1, (b3 b4)->L1, then L1 pair -> L2.
  for (uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(store.ApplyBatch({Insert(i, i)}).ok());
  }
  EXPECT_EQ(store.ConsolidationCount(), 3u);
  EXPECT_EQ(store.ActiveInstanceCount(), 1u);
  EXPECT_EQ(QueryIds(store, Range{0, 63}),
            (std::vector<uint64_t>{0, 1, 2, 3}));
}

TEST(BatchedStoreTest, ActiveInstancesStayLogarithmic) {
  const size_t s = 3;
  BatchedStore store(SchemeId::kLogarithmicBrc, Domain{256}, s);
  const size_t batches = 30;
  for (uint64_t i = 0; i < batches; ++i) {
    ASSERT_TRUE(store.ApplyBatch({Insert(i, i % 256)}).ok());
    // O(s log_s b) bound from Section 7.
    double log_b = std::log(static_cast<double>(i + 1)) /
                   std::log(static_cast<double>(s));
    EXPECT_LE(store.ActiveInstanceCount(),
              static_cast<size_t>(s * (log_b + 2)));
  }
  EXPECT_EQ(QueryIds(store, Range{0, 255}).size(), batches);
}

TEST(BatchedStoreTest, InsertDeletePairCancelsDuringMerge) {
  BatchedStore store(SchemeId::kLogarithmicBrc, Domain{64}, /*step=*/2);
  ASSERT_TRUE(store.ApplyBatch({Insert(1, 10)}).ok());
  ASSERT_TRUE(store.ApplyBatch({Delete(1, 10)}).ok());  // triggers merge
  EXPECT_EQ(store.ConsolidationCount(), 1u);
  // The pair annihilated: no live tuples, and the consolidated level may be
  // empty entirely.
  EXPECT_EQ(store.LiveTupleCount(), 0u);
  EXPECT_TRUE(QueryIds(store, Range{0, 63}).empty());
}

TEST(BatchedStoreTest, TombstoneSurvivesMergeWhenInsertIsOlder) {
  BatchedStore store(SchemeId::kLogarithmicBrc, Domain{64}, /*step=*/2);
  ASSERT_TRUE(store.ApplyBatch({Insert(1, 10), Insert(2, 11)}).ok());
  ASSERT_TRUE(store.ApplyBatch({Insert(3, 12)}).ok());  // merge #1: L1 holds 1,2,3
  ASSERT_TRUE(store.ApplyBatch({Delete(1, 10)}).ok());
  ASSERT_TRUE(store.ApplyBatch({Insert(4, 13)}).ok());  // merge #2 at L0
  // Tombstone for 1 must keep masking the L1 insert.
  EXPECT_EQ(QueryIds(store, Range{0, 63}), (std::vector<uint64_t>{2, 3, 4}));
}

TEST(BatchedStoreTest, WithinBatchLastOpWins) {
  BatchedStore store(SchemeId::kLogarithmicBrc, Domain{64}, 3);
  ASSERT_TRUE(store.ApplyBatch({Insert(1, 10), Delete(1, 10)}).ok());
  EXPECT_TRUE(QueryIds(store, Range{0, 63}).empty());
}

TEST(BatchedStoreTest, WorksWithSrcISchemes) {
  // The mechanism is scheme-agnostic; SRC-i adds false positives that the
  // refiner must drop.
  BatchedStore store(SchemeId::kLogarithmicSrcI, Domain{64}, 2);
  ASSERT_TRUE(store.ApplyBatch({Insert(1, 10), Insert(2, 30)}).ok());
  ASSERT_TRUE(store.ApplyBatch({Insert(3, 11), Delete(2, 30)}).ok());
  EXPECT_EQ(QueryIds(store, Range{9, 31}), (std::vector<uint64_t>{1, 3}));
}

TEST(BatchedStoreTest, RandomizedAgainstReferenceModel) {
  // Fuzz the full update pipeline (batching, tombstones, hierarchical
  // consolidation) against a trivial in-memory reference model, with
  // random queries after every batch.
  const Domain domain{128};
  BatchedStore store(SchemeId::kLogarithmicUrc, domain, /*step=*/2,
                     /*rng_seed=*/3);
  std::unordered_map<uint64_t, uint64_t> reference;  // id -> attr
  Rng rng(2024);
  uint64_t next_id = 0;
  for (int batch_no = 0; batch_no < 12; ++batch_no) {
    std::vector<UpdateOp> batch;
    const int inserts = static_cast<int>(rng.Uniform(1, 10));
    for (int i = 0; i < inserts; ++i) {
      uint64_t id = next_id++;
      uint64_t attr = rng.Uniform(0, domain.size - 1);
      batch.push_back(Insert(id, attr));
      reference[id] = attr;
    }
    // Delete a few live ids.
    const int deletes = static_cast<int>(rng.Uniform(0, 3));
    for (int d = 0; d < deletes && !reference.empty(); ++d) {
      auto it = reference.begin();
      std::advance(it, static_cast<long>(rng.Uniform(0, reference.size() - 1)));
      batch.push_back(Delete(it->first, it->second));
      reference.erase(it);
    }
    ASSERT_TRUE(store.ApplyBatch(batch).ok());

    // Random queries against the model.
    for (int q = 0; q < 5; ++q) {
      uint64_t lo = rng.Uniform(0, domain.size - 1);
      uint64_t hi = rng.Uniform(lo, domain.size - 1);
      std::vector<uint64_t> expected;
      for (const auto& [id, attr] : reference) {
        if (attr >= lo && attr <= hi) expected.push_back(id);
      }
      std::sort(expected.begin(), expected.end());
      EXPECT_EQ(QueryIds(store, Range{lo, hi}), expected)
          << "batch " << batch_no << " range [" << lo << "," << hi << "]";
    }
    EXPECT_EQ(store.LiveTupleCount(), reference.size());
  }
}

TEST(BatchedStoreTest, EmptyBatchIsNoOp) {
  BatchedStore store(SchemeId::kLogarithmicBrc, Domain{64}, 2);
  ASSERT_TRUE(store.ApplyBatch({}).ok());
  EXPECT_EQ(store.ActiveInstanceCount(), 0u);
  EXPECT_TRUE(QueryIds(store, Range{0, 63}).empty());
}

TEST(BatchedStoreTest, QueryCostsScaleWithInstanceCount) {
  BatchedStore store(SchemeId::kLogarithmicBrc, Domain{64}, /*step=*/5);
  ASSERT_TRUE(store.ApplyBatch({Insert(1, 10)}).ok());
  Result<QueryResult> one = store.Query(Range{0, 63});
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(store.ApplyBatch({Insert(2, 20)}).ok());
  Result<QueryResult> two = store.Query(Range{0, 63});
  ASSERT_TRUE(two.ok());
  EXPECT_EQ(two->token_count, 2 * one->token_count);
}

TEST(BatchedStoreTest, TotalIndexSizeTracksInstances) {
  BatchedStore store(SchemeId::kLogarithmicBrc, Domain{64}, 5);
  EXPECT_EQ(store.TotalIndexSizeBytes(), 0u);
  ASSERT_TRUE(store.ApplyBatch({Insert(1, 10)}).ok());
  size_t one = store.TotalIndexSizeBytes();
  EXPECT_GT(one, 0u);
  ASSERT_TRUE(store.ApplyBatch({Insert(2, 20)}).ok());
  EXPECT_GT(store.TotalIndexSizeBytes(), one);
}

}  // namespace
}  // namespace rsse::update
