#include "cover/brc.h"

#include <map>
#include <vector>

#include <gtest/gtest.h>

namespace rsse {
namespace {

/// Checks that `cover` covers exactly [r.lo, r.hi] with pairwise-disjoint
/// dyadic nodes.
void ExpectExactDisjointCover(const std::vector<DyadicNode>& cover,
                              const Range& r, int bits) {
  std::vector<int> hit(size_t{1} << bits, 0);
  for (const DyadicNode& n : cover) {
    for (uint64_t v = n.Lo(); v <= n.Hi(); ++v) ++hit[v];
  }
  for (uint64_t v = 0; v < (uint64_t{1} << bits); ++v) {
    EXPECT_EQ(hit[v], r.Contains(v) ? 1 : 0)
        << "value " << v << " for range [" << r.lo << "," << r.hi << "]";
  }
}

TEST(BrcTest, PaperExampleRange2To7) {
  // Figure 1: BRC covers [2,7] with N2,3 and N4,7.
  std::vector<DyadicNode> cover = BestRangeCover(Range{2, 7}, 3);
  ASSERT_EQ(cover.size(), 2u);
  EXPECT_EQ(cover[0], (DyadicNode{1, 1}));  // N2,3
  EXPECT_EQ(cover[1], (DyadicNode{2, 1}));  // N4,7
}

TEST(BrcTest, PaperExampleRange1To6) {
  // Figure 1: BRC covers [1,6] with N1, N2,3, N4,5 and N6.
  std::vector<DyadicNode> cover = BestRangeCover(Range{1, 6}, 3);
  ASSERT_EQ(cover.size(), 4u);
  EXPECT_EQ(cover[0], (DyadicNode{0, 1}));  // N1
  EXPECT_EQ(cover[1], (DyadicNode{1, 1}));  // N2,3
  EXPECT_EQ(cover[2], (DyadicNode{1, 2}));  // N4,5
  EXPECT_EQ(cover[3], (DyadicNode{0, 6}));  // N6
}

TEST(BrcTest, FullDomainIsRoot) {
  std::vector<DyadicNode> cover = BestRangeCover(Range{0, 7}, 3);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0], (DyadicNode{3, 0}));
}

TEST(BrcTest, SingletonIsLeaf) {
  std::vector<DyadicNode> cover = BestRangeCover(Range{5, 5}, 3);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0], (DyadicNode{0, 5}));
}

TEST(BrcTest, DomainEdgeRangeNoOverflow) {
  std::vector<DyadicNode> cover = BestRangeCover(Range{7, 7}, 3);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0], (DyadicNode{0, 7}));
}

/// Exhaustive sweep over every range of every small domain.
class BrcExhaustiveTest : public ::testing::TestWithParam<int> {};

TEST_P(BrcExhaustiveTest, CoversExactlyAndDisjointly) {
  const int bits = GetParam();
  const uint64_t m = uint64_t{1} << bits;
  for (uint64_t lo = 0; lo < m; ++lo) {
    for (uint64_t hi = lo; hi < m; ++hi) {
      ExpectExactDisjointCover(BestRangeCover(Range{lo, hi}, bits),
                               Range{lo, hi}, bits);
    }
  }
}

TEST_P(BrcExhaustiveTest, AtMostTwoNodesPerLevel) {
  // The minimal dyadic decomposition has <= 2 nodes per level, giving the
  // O(log R) bound of Section 2.2.
  const int bits = GetParam();
  const uint64_t m = uint64_t{1} << bits;
  for (uint64_t lo = 0; lo < m; ++lo) {
    for (uint64_t hi = lo; hi < m; ++hi) {
      std::map<int, int> per_level;
      for (const DyadicNode& n : BestRangeCover(Range{lo, hi}, bits)) {
        ++per_level[n.level];
      }
      for (const auto& [level, count] : per_level) {
        EXPECT_LE(count, 2) << "level " << level << " range [" << lo << ","
                            << hi << "]";
      }
    }
  }
}

namespace {

/// Brute-force minimal dyadic cover size via interval DP (exponential-free
/// reference for small domains).
int MinimalCoverSize(uint64_t lo, uint64_t hi, int bits,
                     std::map<std::pair<uint64_t, uint64_t>, int>& memo) {
  auto key = std::make_pair(lo, hi);
  if (auto it = memo.find(key); it != memo.end()) return it->second;
  // Single dyadic node?
  uint64_t size = hi - lo + 1;
  bool is_power = (size & (size - 1)) == 0;
  if (is_power && lo % size == 0) {
    memo[key] = 1;
    return 1;
  }
  int best = 1 << 30;
  for (uint64_t mid = lo; mid < hi; ++mid) {
    best = std::min(best, MinimalCoverSize(lo, mid, bits, memo) +
                              MinimalCoverSize(mid + 1, hi, bits, memo));
  }
  memo[key] = best;
  return best;
}

}  // namespace

TEST(BrcTest, GreedyIsMinimalAgainstBruteForce) {
  // BRC must produce the *minimum* dyadic decomposition, per Section 2.2.
  const int bits = 5;
  const uint64_t m = uint64_t{1} << bits;
  std::map<std::pair<uint64_t, uint64_t>, int> memo;
  for (uint64_t lo = 0; lo < m; ++lo) {
    for (uint64_t hi = lo; hi < m; ++hi) {
      EXPECT_EQ(static_cast<int>(BestRangeCover(Range{lo, hi}, bits).size()),
                MinimalCoverSize(lo, hi, bits, memo))
          << "range [" << lo << "," << hi << "]";
    }
  }
}

TEST_P(BrcExhaustiveTest, SizeWithinLogBound) {
  const int bits = GetParam();
  const uint64_t m = uint64_t{1} << bits;
  for (uint64_t lo = 0; lo < m; ++lo) {
    for (uint64_t hi = lo; hi < m; ++hi) {
      size_t count = BestRangeCover(Range{lo, hi}, bits).size();
      EXPECT_LE(count, static_cast<size_t>(2 * bits));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SmallDomains, BrcExhaustiveTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7));

}  // namespace
}  // namespace rsse
