#include "sse/encrypted_multimap.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "crypto/random.h"

namespace rsse::sse {
namespace {

PlainMultimap SamplePostings() {
  PlainMultimap postings;
  postings[ToBytes("apple")] = {EncodeIdPayload(1), EncodeIdPayload(2),
                                EncodeIdPayload(3)};
  postings[ToBytes("banana")] = {EncodeIdPayload(10)};
  postings[ToBytes("empty")] = {};
  return postings;
}

TEST(EncryptedMultimapTest, SearchReturnsExactPostings) {
  PrfKeyDeriver deriver(crypto::GenerateKey());
  Result<EncryptedMultimap> built =
      EncryptedMultimap::Build(SamplePostings(), deriver);
  ASSERT_TRUE(built.ok());
  std::vector<Bytes> apple = built->Search(deriver.Derive(ToBytes("apple")));
  ASSERT_EQ(apple.size(), 3u);
  std::vector<uint64_t> ids;
  for (const Bytes& p : apple) ids.push_back(*DecodeIdPayload(p));
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<uint64_t>{1, 2, 3}));
}

TEST(EncryptedMultimapTest, PostingOrderPreserved) {
  PlainMultimap postings;
  postings[ToBytes("w")] = {EncodeIdPayload(7), EncodeIdPayload(5),
                            EncodeIdPayload(9)};
  PrfKeyDeriver deriver(crypto::GenerateKey());
  Result<EncryptedMultimap> built = EncryptedMultimap::Build(postings, deriver);
  ASSERT_TRUE(built.ok());
  std::vector<Bytes> res = built->Search(deriver.Derive(ToBytes("w")));
  ASSERT_EQ(res.size(), 3u);
  EXPECT_EQ(*DecodeIdPayload(res[0]), 7u);
  EXPECT_EQ(*DecodeIdPayload(res[1]), 5u);
  EXPECT_EQ(*DecodeIdPayload(res[2]), 9u);
}

TEST(EncryptedMultimapTest, UnknownKeywordReturnsEmpty) {
  PrfKeyDeriver deriver(crypto::GenerateKey());
  Result<EncryptedMultimap> built =
      EncryptedMultimap::Build(SamplePostings(), deriver);
  ASSERT_TRUE(built.ok());
  EXPECT_TRUE(built->Search(deriver.Derive(ToBytes("missing"))).empty());
}

TEST(EncryptedMultimapTest, WrongKeyDeriverFindsNothing) {
  // Forward-privacy mechanism of Section 7: an index under a fresh key is
  // unreadable with trapdoors from another key.
  PrfKeyDeriver build_deriver(crypto::GenerateKey());
  PrfKeyDeriver other_deriver(crypto::GenerateKey());
  Result<EncryptedMultimap> built =
      EncryptedMultimap::Build(SamplePostings(), build_deriver);
  ASSERT_TRUE(built.ok());
  EXPECT_TRUE(built->Search(other_deriver.Derive(ToBytes("apple"))).empty());
}

TEST(EncryptedMultimapTest, EmptyPostingListLookupEmpty) {
  PrfKeyDeriver deriver(crypto::GenerateKey());
  Result<EncryptedMultimap> built =
      EncryptedMultimap::Build(SamplePostings(), deriver);
  ASSERT_TRUE(built.ok());
  EXPECT_TRUE(built->Search(deriver.Derive(ToBytes("empty"))).empty());
}

TEST(EncryptedMultimapTest, EntryCountMatchesPostings) {
  PrfKeyDeriver deriver(crypto::GenerateKey());
  Result<EncryptedMultimap> built =
      EncryptedMultimap::Build(SamplePostings(), deriver);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built->EntryCount(), 4u);
  EXPECT_GT(built->SizeBytes(), 4 * 16u);
}

TEST(EncryptedMultimapTest, PaddingRoundsUpListsAndHidesCounts) {
  PrfKeyDeriver deriver(crypto::GenerateKey());
  PaddingPolicy padding{4};
  Result<EncryptedMultimap> built =
      EncryptedMultimap::Build(SamplePostings(), deriver, padding);
  ASSERT_TRUE(built.ok());
  // apple(3) -> 4, banana(1) -> 4, empty(0) -> 4.
  EXPECT_EQ(built->EntryCount(), 12u);
  // Search drops dummies.
  EXPECT_EQ(built->Search(deriver.Derive(ToBytes("apple"))).size(), 3u);
  EXPECT_EQ(built->Search(deriver.Derive(ToBytes("banana"))).size(), 1u);
  EXPECT_TRUE(built->Search(deriver.Derive(ToBytes("empty"))).empty());
}

TEST(EncryptedMultimapTest, VariableLengthPayloads) {
  PlainMultimap postings;
  postings[ToBytes("w")] = {ToBytes("short"), Bytes(100, 0xaa), {}};
  PrfKeyDeriver deriver(crypto::GenerateKey());
  Result<EncryptedMultimap> built = EncryptedMultimap::Build(postings, deriver);
  ASSERT_TRUE(built.ok());
  std::vector<Bytes> res = built->Search(deriver.Derive(ToBytes("w")));
  ASSERT_EQ(res.size(), 3u);
  EXPECT_EQ(res[0], ToBytes("short"));
  EXPECT_EQ(res[1], Bytes(100, 0xaa));
  EXPECT_TRUE(res[2].empty());
}

TEST(EncryptedMultimapTest, LargePostingListRoundTrips) {
  PlainMultimap postings;
  for (uint64_t i = 0; i < 500; ++i) {
    postings[ToBytes("big")].push_back(EncodeIdPayload(i));
  }
  PrfKeyDeriver deriver(crypto::GenerateKey());
  Result<EncryptedMultimap> built = EncryptedMultimap::Build(postings, deriver);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built->Search(deriver.Derive(ToBytes("big"))).size(), 500u);
}

TEST(EncryptedMultimapTest, SerializeRoundTrip) {
  PrfKeyDeriver deriver(crypto::GenerateKey());
  Result<EncryptedMultimap> built =
      EncryptedMultimap::Build(SamplePostings(), deriver);
  ASSERT_TRUE(built.ok());
  Bytes blob = built->Serialize();
  Result<EncryptedMultimap> restored = EncryptedMultimap::Deserialize(blob);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->EntryCount(), built->EntryCount());
  EXPECT_EQ(restored->SizeBytes(), built->SizeBytes());
  std::vector<Bytes> apple = restored->Search(deriver.Derive(ToBytes("apple")));
  EXPECT_EQ(apple.size(), 3u);
}

TEST(EncryptedMultimapTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(EncryptedMultimap::Deserialize({}).ok());
  EXPECT_FALSE(EncryptedMultimap::Deserialize(Bytes(40, 0xab)).ok());
}

TEST(EncryptedMultimapTest, DeserializeRejectsTruncation) {
  PrfKeyDeriver deriver(crypto::GenerateKey());
  Result<EncryptedMultimap> built =
      EncryptedMultimap::Build(SamplePostings(), deriver);
  ASSERT_TRUE(built.ok());
  Bytes blob = built->Serialize();
  blob.resize(blob.size() - 5);
  EXPECT_FALSE(EncryptedMultimap::Deserialize(blob).ok());
}

TEST(EncryptedMultimapTest, DeserializeRejectsTrailingBytes) {
  PrfKeyDeriver deriver(crypto::GenerateKey());
  Result<EncryptedMultimap> built =
      EncryptedMultimap::Build(SamplePostings(), deriver);
  ASSERT_TRUE(built.ok());
  Bytes blob = built->Serialize();
  blob.push_back(0x00);
  EXPECT_FALSE(EncryptedMultimap::Deserialize(blob).ok());
}

TEST(EncryptedMultimapTest, ParallelBuildMatchesSerial) {
  PlainMultimap postings;
  for (uint64_t w = 0; w < 50; ++w) {
    Bytes keyword;
    AppendUint64(keyword, w);
    for (uint64_t i = 0; i < 20; ++i) {
      postings[keyword].push_back(EncodeIdPayload(w * 100 + i));
    }
  }
  PrfKeyDeriver deriver(crypto::GenerateKey());
  BuildOptions serial;
  serial.threads = 1;
  BuildOptions parallel;
  parallel.threads = 8;
  Result<EncryptedMultimap> a =
      EncryptedMultimap::BuildWithOptions(postings, deriver, serial);
  Result<EncryptedMultimap> b =
      EncryptedMultimap::BuildWithOptions(postings, deriver, parallel);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->EntryCount(), b->EntryCount());
  for (uint64_t w = 0; w < 50; ++w) {
    Bytes keyword;
    AppendUint64(keyword, w);
    KeywordKeys token = deriver.Derive(keyword);
    std::vector<Bytes> ra = a->Search(token);
    std::vector<Bytes> rb = b->Search(token);
    EXPECT_EQ(ra, rb) << "keyword " << w;
  }
}

TEST(IdPayloadTest, RoundTrip) {
  EXPECT_EQ(*DecodeIdPayload(EncodeIdPayload(0)), 0u);
  EXPECT_EQ(*DecodeIdPayload(EncodeIdPayload(~uint64_t{0})), ~uint64_t{0});
}

TEST(IdPayloadTest, RejectsWrongSize) {
  EXPECT_FALSE(DecodeIdPayload(Bytes(7, 0)).has_value());
  EXPECT_FALSE(DecodeIdPayload(Bytes(9, 0)).has_value());
}

}  // namespace
}  // namespace rsse::sse
