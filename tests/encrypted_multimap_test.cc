#include "sse/encrypted_multimap.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "crypto/random.h"

namespace rsse::sse {
namespace {

PlainMultimap SamplePostings() {
  PlainMultimap postings;
  postings[ToBytes("apple")] = {EncodeIdPayload(1), EncodeIdPayload(2),
                                EncodeIdPayload(3)};
  postings[ToBytes("banana")] = {EncodeIdPayload(10)};
  postings[ToBytes("empty")] = {};
  return postings;
}

TEST(EncryptedMultimapTest, SearchReturnsExactPostings) {
  PrfKeyDeriver deriver(crypto::GenerateKey());
  Result<EncryptedMultimap> built =
      EncryptedMultimap::Build(SamplePostings(), deriver);
  ASSERT_TRUE(built.ok());
  std::vector<Bytes> apple = built->Search(deriver.Derive(ToBytes("apple")));
  ASSERT_EQ(apple.size(), 3u);
  std::vector<uint64_t> ids;
  for (const Bytes& p : apple) ids.push_back(*DecodeIdPayload(p));
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<uint64_t>{1, 2, 3}));
}

TEST(EncryptedMultimapTest, PostingOrderPreserved) {
  PlainMultimap postings;
  postings[ToBytes("w")] = {EncodeIdPayload(7), EncodeIdPayload(5),
                            EncodeIdPayload(9)};
  PrfKeyDeriver deriver(crypto::GenerateKey());
  Result<EncryptedMultimap> built = EncryptedMultimap::Build(postings, deriver);
  ASSERT_TRUE(built.ok());
  std::vector<Bytes> res = built->Search(deriver.Derive(ToBytes("w")));
  ASSERT_EQ(res.size(), 3u);
  EXPECT_EQ(*DecodeIdPayload(res[0]), 7u);
  EXPECT_EQ(*DecodeIdPayload(res[1]), 5u);
  EXPECT_EQ(*DecodeIdPayload(res[2]), 9u);
}

TEST(EncryptedMultimapTest, UnknownKeywordReturnsEmpty) {
  PrfKeyDeriver deriver(crypto::GenerateKey());
  Result<EncryptedMultimap> built =
      EncryptedMultimap::Build(SamplePostings(), deriver);
  ASSERT_TRUE(built.ok());
  EXPECT_TRUE(built->Search(deriver.Derive(ToBytes("missing"))).empty());
}

TEST(EncryptedMultimapTest, WrongKeyDeriverFindsNothing) {
  // Forward-privacy mechanism of Section 7: an index under a fresh key is
  // unreadable with trapdoors from another key.
  PrfKeyDeriver build_deriver(crypto::GenerateKey());
  PrfKeyDeriver other_deriver(crypto::GenerateKey());
  Result<EncryptedMultimap> built =
      EncryptedMultimap::Build(SamplePostings(), build_deriver);
  ASSERT_TRUE(built.ok());
  EXPECT_TRUE(built->Search(other_deriver.Derive(ToBytes("apple"))).empty());
}

TEST(EncryptedMultimapTest, EmptyPostingListLookupEmpty) {
  PrfKeyDeriver deriver(crypto::GenerateKey());
  Result<EncryptedMultimap> built =
      EncryptedMultimap::Build(SamplePostings(), deriver);
  ASSERT_TRUE(built.ok());
  EXPECT_TRUE(built->Search(deriver.Derive(ToBytes("empty"))).empty());
}

TEST(EncryptedMultimapTest, EntryCountMatchesPostings) {
  PrfKeyDeriver deriver(crypto::GenerateKey());
  Result<EncryptedMultimap> built =
      EncryptedMultimap::Build(SamplePostings(), deriver);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built->EntryCount(), 4u);
  EXPECT_GT(built->SizeBytes(), 4 * 16u);
}

TEST(EncryptedMultimapTest, PaddingRoundsUpListsAndHidesCounts) {
  PrfKeyDeriver deriver(crypto::GenerateKey());
  PaddingPolicy padding{4};
  Result<EncryptedMultimap> built =
      EncryptedMultimap::Build(SamplePostings(), deriver, padding);
  ASSERT_TRUE(built.ok());
  // apple(3) -> 4, banana(1) -> 4, empty(0) -> 4.
  EXPECT_EQ(built->EntryCount(), 12u);
  // Search drops dummies.
  EXPECT_EQ(built->Search(deriver.Derive(ToBytes("apple"))).size(), 3u);
  EXPECT_EQ(built->Search(deriver.Derive(ToBytes("banana"))).size(), 1u);
  EXPECT_TRUE(built->Search(deriver.Derive(ToBytes("empty"))).empty());
}

TEST(EncryptedMultimapTest, VariableLengthPayloads) {
  PlainMultimap postings;
  postings[ToBytes("w")] = {ToBytes("short"), Bytes(100, 0xaa), {}};
  PrfKeyDeriver deriver(crypto::GenerateKey());
  Result<EncryptedMultimap> built = EncryptedMultimap::Build(postings, deriver);
  ASSERT_TRUE(built.ok());
  std::vector<Bytes> res = built->Search(deriver.Derive(ToBytes("w")));
  ASSERT_EQ(res.size(), 3u);
  EXPECT_EQ(res[0], ToBytes("short"));
  EXPECT_EQ(res[1], Bytes(100, 0xaa));
  EXPECT_TRUE(res[2].empty());
}

TEST(EncryptedMultimapTest, LargePostingListRoundTrips) {
  PlainMultimap postings;
  for (uint64_t i = 0; i < 500; ++i) {
    postings[ToBytes("big")].push_back(EncodeIdPayload(i));
  }
  PrfKeyDeriver deriver(crypto::GenerateKey());
  Result<EncryptedMultimap> built = EncryptedMultimap::Build(postings, deriver);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built->Search(deriver.Derive(ToBytes("big"))).size(), 500u);
}

TEST(EncryptedMultimapTest, SerializeRoundTrip) {
  PrfKeyDeriver deriver(crypto::GenerateKey());
  Result<EncryptedMultimap> built =
      EncryptedMultimap::Build(SamplePostings(), deriver);
  ASSERT_TRUE(built.ok());
  Bytes blob = built->Serialize();
  Result<EncryptedMultimap> restored = EncryptedMultimap::Deserialize(blob);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->EntryCount(), built->EntryCount());
  EXPECT_EQ(restored->SizeBytes(), built->SizeBytes());
  std::vector<Bytes> apple = restored->Search(deriver.Derive(ToBytes("apple")));
  EXPECT_EQ(apple.size(), 3u);
}

TEST(EncryptedMultimapTest, SerializedLayoutIsLegacyFormat) {
  // Byte-level pin of the wire format shared with the pre-flat-table
  // implementation: magic, count, then (u32 label_len, label, u32
  // value_len, value) per entry with 16-byte labels.
  PrfKeyDeriver deriver(crypto::GenerateKey());
  Result<EncryptedMultimap> built =
      EncryptedMultimap::Build(SamplePostings(), deriver);
  ASSERT_TRUE(built.ok());
  Bytes blob = built->Serialize();
  ASSERT_GE(blob.size(), 16u);
  EXPECT_EQ(ReadUint64(blob, 0), 0x52535345454d4d31ull);  // "RSSEEMM1"
  const uint64_t count = ReadUint64(blob, 8);
  EXPECT_EQ(count, built->EntryCount());
  size_t offset = 16;
  for (uint64_t i = 0; i < count; ++i) {
    ASSERT_LE(offset + 4, blob.size());
    const uint32_t label_len = ReadUint32(blob, offset);
    EXPECT_EQ(label_len, 16u);
    offset += 4 + label_len;
    ASSERT_LE(offset + 4, blob.size());
    const uint32_t value_len = ReadUint32(blob, offset);
    EXPECT_GE(value_len, 32u);  // IV + at least one AES block
    EXPECT_EQ(value_len % 16, 0u);
    offset += 4 + value_len;
  }
  EXPECT_EQ(offset, blob.size());
}

TEST(EncryptedMultimapTest, DeserializeIsEntryOrderIndependent) {
  // Blobs written by older builds iterate entries in a different order;
  // restoring must not depend on it. Reverse the entry stream and verify
  // search parity.
  PrfKeyDeriver deriver(crypto::GenerateKey());
  Result<EncryptedMultimap> built =
      EncryptedMultimap::Build(SamplePostings(), deriver);
  ASSERT_TRUE(built.ok());
  Bytes blob = built->Serialize();
  const uint64_t count = ReadUint64(blob, 8);
  std::vector<Bytes> entries;
  size_t offset = 16;
  for (uint64_t i = 0; i < count; ++i) {
    const size_t start = offset;
    offset += 4 + ReadUint32(blob, offset);
    offset += 4 + ReadUint32(blob, offset);
    entries.emplace_back(blob.begin() + static_cast<long>(start),
                         blob.begin() + static_cast<long>(offset));
  }
  Bytes reordered(blob.begin(), blob.begin() + 16);
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    Append(reordered, *it);
  }
  Result<EncryptedMultimap> restored =
      EncryptedMultimap::Deserialize(reordered);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->EntryCount(), built->EntryCount());
  EXPECT_EQ(restored->Search(deriver.Derive(ToBytes("apple"))).size(), 3u);
  EXPECT_EQ(restored->Search(deriver.Derive(ToBytes("banana"))).size(), 1u);
}

TEST(EncryptedMultimapTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(EncryptedMultimap::Deserialize({}).ok());
  EXPECT_FALSE(EncryptedMultimap::Deserialize(Bytes(40, 0xab)).ok());
}

TEST(EncryptedMultimapTest, DeserializeRejectsTruncation) {
  PrfKeyDeriver deriver(crypto::GenerateKey());
  Result<EncryptedMultimap> built =
      EncryptedMultimap::Build(SamplePostings(), deriver);
  ASSERT_TRUE(built.ok());
  Bytes blob = built->Serialize();
  blob.resize(blob.size() - 5);
  EXPECT_FALSE(EncryptedMultimap::Deserialize(blob).ok());
}

TEST(EncryptedMultimapTest, DeserializeRejectsTrailingBytes) {
  PrfKeyDeriver deriver(crypto::GenerateKey());
  Result<EncryptedMultimap> built =
      EncryptedMultimap::Build(SamplePostings(), deriver);
  ASSERT_TRUE(built.ok());
  Bytes blob = built->Serialize();
  blob.push_back(0x00);
  EXPECT_FALSE(EncryptedMultimap::Deserialize(blob).ok());
}

TEST(EncryptedMultimapTest, ParallelBuildMatchesSerial) {
  PlainMultimap postings;
  for (uint64_t w = 0; w < 50; ++w) {
    Bytes keyword;
    AppendUint64(keyword, w);
    for (uint64_t i = 0; i < 20; ++i) {
      postings[keyword].push_back(EncodeIdPayload(w * 100 + i));
    }
  }
  PrfKeyDeriver deriver(crypto::GenerateKey());
  BuildOptions serial;
  serial.threads = 1;
  BuildOptions parallel;
  parallel.threads = 8;
  Result<EncryptedMultimap> a =
      EncryptedMultimap::BuildWithOptions(postings, deriver, serial);
  Result<EncryptedMultimap> b =
      EncryptedMultimap::BuildWithOptions(postings, deriver, parallel);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->EntryCount(), b->EntryCount());
  for (uint64_t w = 0; w < 50; ++w) {
    Bytes keyword;
    AppendUint64(keyword, w);
    KeywordKeys token = deriver.Derive(keyword);
    std::vector<Bytes> ra = a->Search(token);
    std::vector<Bytes> rb = b->Search(token);
    EXPECT_EQ(ra, rb) << "keyword " << w;
  }
}


TEST(EmmSizingTest, SizingMatchesBytesActuallyWritten) {
  // The batch staging path reserves from ComputeKeywordEmmSizing and the
  // stores reserve from ComputeEmmSizing; both must equal the bytes the
  // encryption actually emits — for padded, empty and non-padded lists.
  PrfKeyDeriver deriver(crypto::GenerateKey());
  struct Case {
    std::vector<Bytes> payloads;
    uint64_t pad_quantum;
  };
  const Case cases[] = {
      {{EncodeIdPayload(1), EncodeIdPayload(2), EncodeIdPayload(3)}, 0},
      {{EncodeIdPayload(1), EncodeIdPayload(2), EncodeIdPayload(3)}, 4},
      {{}, 0},
      {{}, 8},
      {{ToBytes("short"), Bytes(100, 0xaa), {}}, 5},
  };
  for (size_t k = 0; k < std::size(cases); ++k) {
    const Case& c = cases[k];
    const EmmSizing sizing =
        ComputeKeywordEmmSizing(c.payloads, c.pad_quantum);
    EmmBuildScratch scratch;
    size_t entries = 0;
    size_t bytes_written = 0;
    std::vector<Bytes> storage;
    Status s = EncryptKeywordEntries(
        ToBytes("kw"), c.payloads, deriver, c.pad_quantum, scratch,
        [&](const Label&, size_t len) {
          ++entries;
          bytes_written += len;
          storage.emplace_back(len);
          return ByteSpan(storage.back().data(), len);
        });
    ASSERT_TRUE(s.ok()) << "case " << k;
    EXPECT_EQ(entries, sizing.entries) << "case " << k;
    EXPECT_EQ(bytes_written, sizing.value_bytes) << "case " << k;
  }
}

TEST(EmmSizingTest, MultimapSizingMatchesBuiltIndex) {
  // ComputeEmmSizing over a whole multimap equals the built index's entry
  // count and arena bytes (SizeBytes = entries * label + value bytes).
  PrfKeyDeriver deriver(crypto::GenerateKey());
  for (const uint64_t quantum : {uint64_t{0}, uint64_t{4}}) {
    PlainMultimap postings = SamplePostings();
    const EmmSizing sizing = ComputeEmmSizing(postings, quantum);
    Result<EncryptedMultimap> built =
        EncryptedMultimap::Build(postings, deriver, PaddingPolicy{quantum});
    ASSERT_TRUE(built.ok());
    EXPECT_EQ(built->EntryCount(), sizing.entries);
    EXPECT_EQ(built->SizeBytes(),
              sizing.entries * kLabelBytes + sizing.value_bytes);
  }
}

TEST(IdPayloadTest, RoundTrip) {
  EXPECT_EQ(*DecodeIdPayload(EncodeIdPayload(0)), 0u);
  EXPECT_EQ(*DecodeIdPayload(EncodeIdPayload(~uint64_t{0})), ~uint64_t{0});
}

TEST(IdPayloadTest, RejectsWrongSize) {
  EXPECT_FALSE(DecodeIdPayload(Bytes(7, 0)).has_value());
  EXPECT_FALSE(DecodeIdPayload(Bytes(9, 0)).has_value());
}

}  // namespace
}  // namespace rsse::sse
