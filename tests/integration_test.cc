// End-to-end scenarios cutting across modules: realistic synthetic data,
// mixed workloads, qualitative cost relationships from Table 1 / Section 8.

#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "data/workload.h"
#include "pb/pb_scheme.h"
#include "rsse/constant.h"
#include "rsse/factory.h"
#include "rsse/log_src.h"
#include "rsse/log_src_i.h"
#include "rsse/logarithmic.h"
#include "rsse/scheme.h"

namespace rsse {
namespace {

std::vector<uint64_t> Sorted(std::vector<uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(IntegrationTest, AllSchemesAgreeOnRandomWorkload) {
  Rng rng(100);
  Dataset data = GenerateGowallaLike(400, 1 << 12, rng);
  std::vector<std::unique_ptr<RangeScheme>> schemes;
  for (SchemeId id : AllSchemeIds()) {
    if (id == SchemeId::kQuadratic) continue;  // domain too large by design
    schemes.push_back(MakeScheme(id, 55));
  }
  schemes.push_back(pb::MakePbScheme(55));
  for (auto& s : schemes) ASSERT_TRUE(s->Build(data).ok());

  Rng qrng(101);
  for (const Range& r : RandomRangesOfSize(data.domain(), 200, 25, qrng)) {
    std::vector<uint64_t> truth = Sorted(data.IdsInRange(r));
    for (auto& s : schemes) {
      Result<QueryResult> q = s->Query(r);
      ASSERT_TRUE(q.ok()) << SchemeName(s->id());
      EXPECT_EQ(Sorted(FilterIdsToRange(data, q->ids, r)), truth)
          << SchemeName(s->id()) << " on [" << r.lo << "," << r.hi << "]";
    }
  }
}

TEST(IntegrationTest, StorageOrderingMatchesTableOne) {
  // Table 1 storage column: Constant O(n) < Logarithmic O(n log m)
  // < SRC (TDAG doubles keywords) <= SRC-i (extra index).
  Rng rng(42);
  Dataset data = GenerateGowallaLike(500, 1 << 14, rng);
  ConstantScheme constant(CoverTechnique::kBrc);
  LogarithmicScheme logarithmic(CoverTechnique::kBrc);
  LogarithmicSrcScheme src;
  LogarithmicSrcIScheme srci;
  ASSERT_TRUE(constant.Build(data).ok());
  ASSERT_TRUE(logarithmic.Build(data).ok());
  ASSERT_TRUE(src.Build(data).ok());
  ASSERT_TRUE(srci.Build(data).ok());
  EXPECT_LT(constant.IndexSizeBytes(), logarithmic.IndexSizeBytes());
  EXPECT_LT(logarithmic.IndexSizeBytes(), src.IndexSizeBytes());
  EXPECT_LT(src.IndexSizeBytes(), srci.IndexSizeBytes());
}

TEST(IntegrationTest, SrcIAuxIndexShrinksWithSkew) {
  // Table 2 vs Figure 5: on ~5%-distinct data the auxiliary index adds
  // little; on ~95%-distinct data it roughly doubles the total.
  Rng rng1(1);
  Rng rng2(2);
  Dataset uniformish = GenerateGowallaLike(800, 1 << 16, rng1);
  Dataset skewed = GenerateUspsLike(800, 1 << 16, rng2);
  LogarithmicSrcIScheme on_uniform;
  LogarithmicSrcIScheme on_skewed;
  ASSERT_TRUE(on_uniform.Build(uniformish).ok());
  ASSERT_TRUE(on_skewed.Build(skewed).ok());
  double uniform_aux_fraction =
      static_cast<double>(on_uniform.AuxiliaryIndexSizeBytes()) /
      static_cast<double>(on_uniform.IndexSizeBytes());
  double skewed_aux_fraction =
      static_cast<double>(on_skewed.AuxiliaryIndexSizeBytes()) /
      static_cast<double>(on_skewed.IndexSizeBytes());
  EXPECT_GT(uniform_aux_fraction, 2 * skewed_aux_fraction);
}

TEST(IntegrationTest, QuerySizeShapesMatchFigure8) {
  // Fig 8a: SRC/SRC-i constant; BRC/URC grow ~logarithmically; URC >= BRC.
  Rng rng(9);
  Dataset data = GenerateUniform(300, 1 << 16, rng);
  LogarithmicScheme brc(CoverTechnique::kBrc);
  LogarithmicScheme urc(CoverTechnique::kUrc);
  LogarithmicSrcScheme src;
  ASSERT_TRUE(brc.Build(data).ok());
  ASSERT_TRUE(urc.Build(data).ok());
  ASSERT_TRUE(src.Build(data).ok());

  auto query_bytes = [](RangeScheme& s, Range r) {
    Result<QueryResult> q = s.Query(r);
    EXPECT_TRUE(q.ok());
    return q->token_bytes;
  };
  Range small{100, 101};
  Range large{100, 1099};
  EXPECT_EQ(query_bytes(src, small), query_bytes(src, large));  // constant
  EXPECT_LT(query_bytes(brc, small), query_bytes(brc, large));  // grows
  EXPECT_GE(query_bytes(urc, large), query_bytes(brc, large));  // URC >= BRC
}

TEST(IntegrationTest, SearchCostReflectsFalsePositives) {
  // Under heavy skew SRC touches nearly the whole dataset while SRC-i does
  // not — the Figure 7b crossover.
  Rng rng(12);
  Dataset data = GenerateSingleValueWithOutliers(600, 1 << 10, /*hot=*/512,
                                                 /*outliers=*/30, rng);
  LogarithmicSrcScheme src;
  LogarithmicSrcIScheme srci;
  ASSERT_TRUE(src.Build(data).ok());
  ASSERT_TRUE(srci.Build(data).ok());
  Range r{500, 520};  // contains the hot value
  Result<QueryResult> src_q = src.Query(r);
  Result<QueryResult> srci_q = srci.Query(r);
  ASSERT_TRUE(src_q.ok());
  ASSERT_TRUE(srci_q.ok());
  // Query hits the hot value, so both return >= 570 true results. Now query
  // just beside the hot value:
  Range beside{513, 533};
  src_q = src.Query(beside);
  srci_q = srci.Query(beside);
  ASSERT_TRUE(src_q.ok());
  ASSERT_TRUE(srci_q.ok());
  EXPECT_GT(src_q->ids.size(), srci_q->ids.size());
}

TEST(IntegrationTest, ConstantSchemeWorksOnLargeDomain) {
  // DPRF delegation over a 2^20 domain (the Appendix A setting).
  Rng rng(77);
  Dataset data = GenerateUniform(200, uint64_t{1} << 20, rng);
  ConstantScheme scheme(CoverTechnique::kUrc);
  ASSERT_TRUE(scheme.Build(data).ok());
  Rng qrng(78);
  for (const Range& r : RandomRangesOfSize(data.domain(), 100, 10, qrng)) {
    Result<QueryResult> q = scheme.Query(r);
    ASSERT_TRUE(q.ok());
    EXPECT_EQ(Sorted(q->ids), Sorted(data.IdsInRange(r)));
    EXPECT_LE(q->token_count, 14u);  // O(log 100) tokens
  }
}

}  // namespace
}  // namespace rsse
