#include "pb/pb_scheme.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "cover/brc.h"
#include "data/generators.h"
#include "rsse/scheme.h"

namespace rsse::pb {
namespace {

std::vector<uint64_t> Sorted(std::vector<uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(PbSchemeTest, NoFalseNegativesExhaustive) {
  Rng rng(3);
  Dataset data = GenerateUniform(64, 64, rng);
  PbScheme scheme(/*rng_seed=*/1, /*fp_rate=*/0.01);
  ASSERT_TRUE(scheme.Build(data).ok());
  for (uint64_t lo = 0; lo < 64; lo += 4) {
    for (uint64_t hi = lo; hi < 64; hi += 5) {
      Result<QueryResult> q = scheme.Query(Range{lo, hi});
      ASSERT_TRUE(q.ok());
      std::vector<uint64_t> got = Sorted(q->ids);
      for (uint64_t id : data.IdsInRange(Range{lo, hi})) {
        EXPECT_TRUE(std::binary_search(got.begin(), got.end(), id))
            << "missing id " << id << " for [" << lo << "," << hi << "]";
      }
    }
  }
}

TEST(PbSchemeTest, FalsePositivesAreRareWithTightFilters) {
  Rng rng(5);
  Dataset data = GenerateUniform(500, 1 << 12, rng);
  PbScheme scheme(/*rng_seed=*/2, /*fp_rate=*/0.001);
  ASSERT_TRUE(scheme.Build(data).ok());
  size_t total_returned = 0;
  size_t total_truth = 0;
  Rng qrng(7);
  for (int i = 0; i < 50; ++i) {
    uint64_t lo = qrng.Uniform(0, (1 << 12) - 200);
    Range r{lo, lo + 127};
    Result<QueryResult> q = scheme.Query(r);
    ASSERT_TRUE(q.ok());
    total_returned += q->ids.size();
    total_truth += data.IdsInRange(r).size();
  }
  // Bloom FP rate 0.1%: spurious leaves should be a tiny fraction.
  EXPECT_LT(total_returned, total_truth + total_truth / 2 + 50);
}

TEST(PbSchemeTest, NoFalseNegativesUnderSkew) {
  // Duplicate-heavy values stress the random permutation + split: every
  // copy of a hot value must still reach its own leaf.
  Rng rng(11);
  Dataset data = GenerateSingleValueWithOutliers(300, 256, /*hot_value=*/77,
                                                 /*outliers=*/30, rng);
  PbScheme scheme(/*rng_seed=*/4, /*fp_rate=*/0.01);
  ASSERT_TRUE(scheme.Build(data).ok());
  for (const Range& r : {Range{70, 80}, Range{0, 255}, Range{77, 77}}) {
    Result<QueryResult> q = scheme.Query(r);
    ASSERT_TRUE(q.ok());
    std::vector<uint64_t> got = Sorted(q->ids);
    for (uint64_t id : data.IdsInRange(r)) {
      EXPECT_TRUE(std::binary_search(got.begin(), got.end(), id))
          << "missing id " << id;
    }
  }
}

TEST(PbSchemeTest, TokenCountEqualsMinimalDyadicCover) {
  Rng rng(3);
  Dataset data = GenerateUniform(64, 256, rng);
  PbScheme scheme;
  ASSERT_TRUE(scheme.Build(data).ok());
  Range r{3, 200};
  Result<QueryResult> q = scheme.Query(r);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->token_count, BestRangeCover(r, 8).size());
}

TEST(PbSchemeTest, IndexSizeCarriesLogNLogMFactor) {
  // PB stores a filter per tree node over the DR sets: doubling n more than
  // doubles the index (the log n factor adds a level).
  Rng rng(3);
  PbScheme small_scheme;
  PbScheme big_scheme;
  ASSERT_TRUE(small_scheme.Build(GenerateUniform(128, 1 << 10, rng)).ok());
  ASSERT_TRUE(big_scheme.Build(GenerateUniform(256, 1 << 10, rng)).ok());
  EXPECT_GT(big_scheme.IndexSizeBytes(), 2 * small_scheme.IndexSizeBytes());
}

TEST(PbSchemeTest, RefinementRemovesBloomFalsePositives) {
  Rng rng(9);
  Dataset data = GenerateUniform(200, 512, rng);
  PbScheme scheme(/*rng_seed=*/1, /*fp_rate=*/0.05);  // deliberately loose
  ASSERT_TRUE(scheme.Build(data).ok());
  Range r{100, 220};
  Result<QueryResult> q = scheme.Query(r);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(Sorted(FilterIdsToRange(data, q->ids, r)),
            Sorted(data.IdsInRange(r)));
}

TEST(PbSchemeTest, EmptyDatasetBuildsAndAnswersEmpty) {
  // The shared scheme contract (scheme_correctness_test): an empty dataset
  // is a valid degenerate input — e.g. a fully-cancelled update batch.
  PbScheme scheme;
  ASSERT_TRUE(scheme.Build(Dataset(Domain{8}, {})).ok());
  auto q = scheme.Query(Range{0, 7});
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->ids.empty());
}

TEST(PbSchemeTest, QueryBeforeBuildFails) {
  PbScheme scheme;
  EXPECT_FALSE(scheme.Query(Range{0, 1}).ok());
}

TEST(PbSchemeTest, SingleTupleTree) {
  Dataset data(Domain{16}, {{42, 7}});
  PbScheme scheme;
  ASSERT_TRUE(scheme.Build(data).ok());
  Result<QueryResult> hit = scheme.Query(Range{0, 15});
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit->ids, std::vector<uint64_t>{42});
}

TEST(PbSchemeTest, FactoryProducesWorkingScheme) {
  std::unique_ptr<RangeScheme> scheme = MakePbScheme(5);
  EXPECT_EQ(scheme->id(), SchemeId::kPb);
  Dataset data(Domain{16}, {{1, 3}, {2, 12}});
  ASSERT_TRUE(scheme->Build(data).ok());
  Result<QueryResult> q = scheme->Query(Range{0, 7});
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(FilterIdsToRange(data, q->ids, Range{0, 7}),
            std::vector<uint64_t>{1});
}

}  // namespace
}  // namespace rsse::pb
