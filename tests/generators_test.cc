#include "data/generators.h"

#include <gtest/gtest.h>

namespace rsse {
namespace {

TEST(GeneratorsTest, UniformShape) {
  Rng rng(1);
  Dataset d = GenerateUniform(1000, 1 << 20, rng);
  EXPECT_EQ(d.size(), 1000u);
  EXPECT_EQ(d.domain().size, uint64_t{1} << 20);
  for (const Record& r : d.records()) {
    EXPECT_LT(r.attr, d.domain().size);
  }
}

TEST(GeneratorsTest, IdsAreUniqueAndSequential) {
  Rng rng(1);
  Dataset d = GenerateUniform(100, 1 << 10, rng);
  for (size_t i = 0; i < d.size(); ++i) EXPECT_EQ(d.records()[i].id, i);
}

TEST(GeneratorsTest, GowallaLikeIsMostlyDistinct) {
  Rng rng(2);
  Dataset d = GenerateGowallaLike(20000, uint64_t{1} << 26, rng);
  double distinct_ratio =
      static_cast<double>(d.DistinctValueCount()) / static_cast<double>(d.size());
  // The paper's Gowalla attribute has ~95% distinct values.
  EXPECT_GT(distinct_ratio, 0.90);
  EXPECT_LE(distinct_ratio, 1.0);
}

TEST(GeneratorsTest, UspsLikeIsHeavilySkewed) {
  Rng rng(3);
  Dataset d = GenerateUspsLike(20000, 276841, rng);
  double distinct_ratio =
      static_cast<double>(d.DistinctValueCount()) / static_cast<double>(d.size());
  // The paper's USPS attribute has ~5% distinct values.
  EXPECT_LT(distinct_ratio, 0.15);
  EXPECT_GT(distinct_ratio, 0.001);
}

TEST(GeneratorsTest, UspsLikeStaysInDomain) {
  Rng rng(3);
  Dataset d = GenerateUspsLike(5000, 276841, rng);
  for (const Record& r : d.records()) EXPECT_LT(r.attr, 276841u);
}

TEST(GeneratorsTest, ZipfConcentratesMass) {
  Rng rng(4);
  Dataset d = GenerateZipf(10000, 1 << 16, /*theta=*/1.2, rng);
  // Under heavy Zipf skew far fewer distinct values than tuples.
  EXPECT_LT(d.DistinctValueCount(), d.size() / 2);
}

TEST(GeneratorsTest, SingleValueWithOutliers) {
  Rng rng(5);
  Dataset d = GenerateSingleValueWithOutliers(1000, 1 << 10, /*hot_value=*/42,
                                              /*outliers=*/10, rng);
  size_t hot = 0;
  for (const Record& r : d.records()) {
    if (r.attr == 42) ++hot;
  }
  EXPECT_GE(hot, 990u - 10u);  // outliers could also land on 42
  EXPECT_EQ(d.size(), 1000u);
}

TEST(GeneratorsTest, DeterministicGivenSeed) {
  Rng rng1(9);
  Rng rng2(9);
  Dataset a = GenerateUspsLike(500, 10000, rng1);
  Dataset b = GenerateUspsLike(500, 10000, rng2);
  EXPECT_EQ(a.records(), b.records());
}

}  // namespace
}  // namespace rsse
