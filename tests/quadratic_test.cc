#include "rsse/quadratic.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace rsse {
namespace {

Dataset SmallDataset() {
  // Domain {0..15}; values with duplicates and gaps.
  return Dataset(Domain{16}, {{0, 3}, {1, 3}, {2, 7}, {3, 0}, {4, 15}, {5, 9}});
}

std::vector<uint64_t> Sorted(std::vector<uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(QuadraticTest, ExhaustiveCorrectnessNoFalsePositives) {
  QuadraticScheme scheme(/*rng_seed=*/1);
  Dataset data = SmallDataset();
  ASSERT_TRUE(scheme.Build(data).ok());
  for (uint64_t lo = 0; lo < 16; ++lo) {
    for (uint64_t hi = lo; hi < 16; ++hi) {
      Result<QueryResult> r = scheme.Query(Range{lo, hi});
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(Sorted(r->ids), Sorted(data.IdsInRange(Range{lo, hi})))
          << "range [" << lo << "," << hi << "]";
    }
  }
}

TEST(QuadraticTest, SingleTokenPerQuery) {
  QuadraticScheme scheme;
  ASSERT_TRUE(scheme.Build(SmallDataset()).ok());
  Result<QueryResult> r = scheme.Query(Range{2, 9});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->token_count, 1u);
  EXPECT_EQ(r->rounds, 1);
}

TEST(QuadraticTest, RejectsLargeDomain) {
  QuadraticScheme scheme;
  Dataset big(Domain{QuadraticScheme::kMaxDomain + 1}, {{0, 0}});
  EXPECT_EQ(scheme.Build(big).code(), StatusCode::kInvalidArgument);
}

TEST(QuadraticTest, QueryBeforeBuildFails) {
  QuadraticScheme scheme;
  EXPECT_EQ(scheme.Query(Range{0, 1}).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(QuadraticTest, StorageGrowsQuadraticallyWithDomain) {
  // Same records indexed over domains of sizes 8 and 16: the bigger domain
  // multiplies the number of covering ranges per tuple by roughly 4.
  QuadraticScheme small_scheme;
  QuadraticScheme big_scheme;
  std::vector<Record> records = {{0, 1}, {1, 2}, {2, 3}};
  ASSERT_TRUE(small_scheme.Build(Dataset(Domain{8}, records)).ok());
  ASSERT_TRUE(big_scheme.Build(Dataset(Domain{16}, records)).ok());
  EXPECT_GT(big_scheme.IndexSizeBytes(), 2 * small_scheme.IndexSizeBytes());
}

TEST(QuadraticTest, PaddingIncreasesIndexSize) {
  QuadraticScheme plain(1, /*pad_quantum=*/0);
  QuadraticScheme padded(1, /*pad_quantum=*/8);
  Dataset data(Domain{8}, {{0, 1}, {1, 5}});
  ASSERT_TRUE(plain.Build(data).ok());
  ASSERT_TRUE(padded.Build(data).ok());
  EXPECT_GT(padded.IndexSizeBytes(), plain.IndexSizeBytes());
}

TEST(QuadraticTest, ClipsRangeToDomain) {
  QuadraticScheme scheme;
  Dataset data = SmallDataset();
  ASSERT_TRUE(scheme.Build(data).ok());
  Result<QueryResult> r = scheme.Query(Range{10, 500});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Sorted(r->ids), Sorted(data.IdsInRange(Range{10, 15})));
  // Entirely outside the domain: empty.
  Result<QueryResult> out = scheme.Query(Range{100, 200});
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->ids.empty());
}

}  // namespace
}  // namespace rsse
