#include "rsse/constant_cache.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace rsse {
namespace {

Dataset TestDataset() {
  std::vector<Record> records;
  for (uint64_t i = 0; i < 32; ++i) records.push_back({i, i * 2});
  return Dataset(Domain{64}, std::move(records));
}

std::vector<uint64_t> Sorted(std::vector<uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

class CachedConstantClientTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = TestDataset();
    scheme_ = std::make_unique<ConstantScheme>(CoverTechnique::kUrc);
    ASSERT_TRUE(scheme_->Build(data_).ok());
    client_ = std::make_unique<CachedConstantClient>(*scheme_, data_);
  }

  Dataset data_;
  std::unique_ptr<ConstantScheme> scheme_;
  std::unique_ptr<CachedConstantClient> client_;
};

TEST_F(CachedConstantClientTest, FreshQueryHitsServer) {
  Result<CachedConstantClient::Answer> a = client_->Query(Range{0, 15});
  ASSERT_TRUE(a.ok());
  EXPECT_FALSE(a->served_from_cache);
  EXPECT_GT(a->token_count, 0u);
  EXPECT_EQ(Sorted(a->ids), Sorted(data_.IdsInRange(Range{0, 15})));
  EXPECT_EQ(client_->HistorySize(), 1u);
}

TEST_F(CachedConstantClientTest, SubRangeServedFromCache) {
  ASSERT_TRUE(client_->Query(Range{0, 15}).ok());
  Result<CachedConstantClient::Answer> a = client_->Query(Range{4, 9});
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(a->served_from_cache);
  EXPECT_EQ(a->token_count, 0u);  // nothing left the owner
  EXPECT_EQ(Sorted(a->ids), Sorted(data_.IdsInRange(Range{4, 9})));
  EXPECT_EQ(client_->HistorySize(), 1u);  // no new server query
}

TEST_F(CachedConstantClientTest, UnionOfCachedRangesCovers) {
  ASSERT_TRUE(client_->Query(Range{0, 15}).ok());
  ASSERT_TRUE(client_->Query(Range{16, 31}).ok());
  // [10, 20] spans both cached ranges.
  Result<CachedConstantClient::Answer> a = client_->Query(Range{10, 20});
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(a->served_from_cache);
  EXPECT_EQ(Sorted(a->ids), Sorted(data_.IdsInRange(Range{10, 20})));
}

TEST_F(CachedConstantClientTest, PartiallyCoveredIntersectionRefused) {
  ASSERT_TRUE(client_->Query(Range{0, 15}).ok());
  // [10, 25] intersects the history but [16, 25] is uncovered.
  Result<CachedConstantClient::Answer> a = client_->Query(Range{10, 25});
  EXPECT_EQ(a.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(CachedConstantClientTest, DisjointQueriesKeepHittingServer) {
  ASSERT_TRUE(client_->Query(Range{0, 7}).ok());
  ASSERT_TRUE(client_->Query(Range{8, 15}).ok());
  ASSERT_TRUE(client_->Query(Range{40, 50}).ok());
  EXPECT_EQ(client_->HistorySize(), 3u);
}

TEST_F(CachedConstantClientTest, CacheAnswersAreDeduplicated) {
  ASSERT_TRUE(client_->Query(Range{0, 9}).ok());
  ASSERT_TRUE(client_->Query(Range{10, 19}).ok());
  Result<CachedConstantClient::Answer> a = client_->Query(Range{0, 19});
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(a->served_from_cache);
  std::vector<uint64_t> ids = a->ids;
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
}

TEST_F(CachedConstantClientTest, OutOfDomainQueryIsEmpty) {
  Result<CachedConstantClient::Answer> a = client_->Query(Range{100, 200});
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(a->ids.empty());
}

}  // namespace
}  // namespace rsse
