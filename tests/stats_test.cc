#include "common/stats.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace rsse {
namespace {

TEST(AtomicMaxGaugeTest, TracksRunningMax) {
  AtomicMaxGauge g;
  EXPECT_EQ(g.value(), 0u);
  g.Observe(7);
  g.Observe(3);  // smaller observations never lower the max
  EXPECT_EQ(g.value(), 7u);
  g.Observe(7);
  EXPECT_EQ(g.value(), 7u);
  g.Observe(19);
  EXPECT_EQ(g.value(), 19u);
  g.Reset();
  EXPECT_EQ(g.value(), 0u);
}

TEST(AtomicMaxGaugeTest, ConcurrentObserversConvergeOnGlobalMax) {
  AtomicMaxGauge g;
  constexpr uint64_t kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (uint64_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g, t] {
      // Interleaved ascending sequences: every thread repeatedly loses
      // and retries the CAS against the others' larger observations.
      for (uint64_t i = 1; i <= kPerThread; ++i) g.Observe(i * kThreads + t);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(g.value(), kPerThread * kThreads + (kThreads - 1));
}

TEST(StatsAccumulatorTest, EmptyIsZero) {
  StatsAccumulator s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.Percentile(50), 0.0);
}

TEST(StatsAccumulatorTest, BasicAggregates) {
  StatsAccumulator s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.Add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(StatsAccumulatorTest, Percentiles) {
  StatsAccumulator s;
  for (int i = 1; i <= 100; ++i) s.Add(i);
  EXPECT_DOUBLE_EQ(s.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 100.0);
  EXPECT_NEAR(s.Percentile(50), 50.5, 0.5);
  EXPECT_NEAR(s.Percentile(90), 90.1, 0.5);
}

TEST(StatsAccumulatorTest, PercentileAfterInterleavedAdds) {
  StatsAccumulator s;
  s.Add(10);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 10.0);
  s.Add(20);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 20.0);
}

TEST(WallTimerTest, MeasuresElapsedTime) {
  WallTimer t;
  double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  ASSERT_GE(sink, 0.0);
  EXPECT_GT(t.ElapsedNanos(), 0u);
  EXPECT_GE(t.ElapsedMillis(), 0.0);
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
}

TEST(WallTimerTest, ResetRestartsClock) {
  WallTimer t;
  double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  ASSERT_GE(sink, 0.0);
  uint64_t before = t.ElapsedNanos();
  t.Reset();
  EXPECT_LT(t.ElapsedNanos(), before);
}

TEST(WallTimerTest, UnitsConsistent) {
  WallTimer t;
  double sink = 0;
  for (int i = 0; i < 1000000; ++i) sink += i;
  ASSERT_GE(sink, 0.0);
  uint64_t ns = t.ElapsedNanos();
  EXPECT_NEAR(t.ElapsedMillis(), static_cast<double>(ns) / 1e6,
              static_cast<double>(ns) / 1e6);
}

}  // namespace
}  // namespace rsse
