#include "crypto/sha.h"

#include <gtest/gtest.h>

#include "common/bytes.h"

namespace rsse::crypto {
namespace {

// FIPS 180 reference vectors for the message "abc".
TEST(ShaTest, Sha1KnownVector) {
  EXPECT_EQ(ToHex(Sha1(ToBytes("abc"))),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(ShaTest, Sha256KnownVector) {
  EXPECT_EQ(ToHex(Sha256(ToBytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(ShaTest, Sha512KnownVector) {
  EXPECT_EQ(ToHex(Sha512(ToBytes("abc"))),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
            "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f");
}

TEST(ShaTest, EmptyInputVectors) {
  EXPECT_EQ(ToHex(Sha1({})), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(ToHex(Sha256({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(ShaTest, OutputSizes) {
  EXPECT_EQ(Sha1(ToBytes("x")).size(), 20u);
  EXPECT_EQ(Sha256(ToBytes("x")).size(), 32u);
  EXPECT_EQ(Sha512(ToBytes("x")).size(), 64u);
}

TEST(ShaTest, DifferentInputsDiffer) {
  EXPECT_NE(Sha256(ToBytes("a")), Sha256(ToBytes("b")));
}

}  // namespace
}  // namespace rsse::crypto
