#include "rsse/leakage.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "cover/urc.h"

namespace rsse::leakage {
namespace {

Dataset FigureOneDataset() {
  // d1.a = 0, d2.a = 3 — the example of Section 5's leakage discussion.
  return Dataset(Domain{8}, {{1, 0}, {2, 3}});
}

TEST(CoverLevelProfileTest, UrcProfilePositionIndependent) {
  const int bits = 6;
  for (uint64_t size = 1; size <= 32; ++size) {
    std::vector<int> reference =
        CoverLevelProfile(Range{0, size - 1}, CoverTechnique::kUrc, bits);
    for (uint64_t lo = 1; lo + size <= 64; ++lo) {
      EXPECT_EQ(CoverLevelProfile(Range{lo, lo + size - 1},
                                  CoverTechnique::kUrc, bits),
                reference)
          << "size " << size << " lo " << lo;
    }
  }
}

TEST(CoverLevelProfileTest, BrcProfileLeaksPosition) {
  // Ranges [2,7] and [1,6] (size 6) have different BRC shapes: the paper's
  // motivation for URC.
  std::vector<int> a = CoverLevelProfile(Range{2, 7}, CoverTechnique::kBrc, 3);
  std::vector<int> b = CoverLevelProfile(Range{1, 6}, CoverTechnique::kBrc, 3);
  EXPECT_NE(a, b);
}

TEST(ResultPartitioningTest, GroupsMatchCoverNodes) {
  Dataset data = FigureOneDataset();
  // Query [0,3]: BRC covers with the single node N0,3 -> one group holding
  // both results.
  std::vector<ResultGroup> groups =
      ResultPartitioning(data, Range{0, 3}, CoverTechnique::kBrc, 3);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].level, 2);
  EXPECT_EQ(std::set<uint64_t>(groups[0].ids.begin(), groups[0].ids.end()),
            (std::set<uint64_t>{1, 2}));
}

TEST(ResultPartitioningTest, MultiNodeQuerySplitsResults) {
  Dataset data(Domain{8}, {{1, 1}, {2, 2}, {3, 5}});
  // BRC of [1,6]: N1 | N2,3 | N4,5 | N6 -> results split into groups.
  std::vector<ResultGroup> groups =
      ResultPartitioning(data, Range{1, 6}, CoverTechnique::kBrc, 3);
  ASSERT_EQ(groups.size(), 4u);
  EXPECT_EQ(groups[0].ids, std::vector<uint64_t>{1});  // N1
  EXPECT_EQ(groups[1].ids, std::vector<uint64_t>{2});  // N2,3
  EXPECT_EQ(groups[2].ids, std::vector<uint64_t>{3});  // N4,5
  EXPECT_TRUE(groups[3].ids.empty());                  // N6
}

TEST(ConstantStructuralLeakageTest, RevealsInSubtreeOffsets) {
  // Section 5's example: query [0,3] leaks that d1 maps to the left-most
  // leaf of N0,3's subtree and d2 to the right-most.
  Dataset data = FigureOneDataset();
  std::vector<SubtreeMapping> leak =
      ConstantStructuralLeakage(data, Range{0, 3}, CoverTechnique::kBrc, 3);
  ASSERT_EQ(leak.size(), 1u);
  EXPECT_EQ(leak[0].level, 2);
  ASSERT_EQ(leak[0].offset_to_id.size(), 2u);
  EXPECT_EQ(leak[0].offset_to_id[0], std::make_pair(uint64_t{0}, uint64_t{1}));
  EXPECT_EQ(leak[0].offset_to_id[1], std::make_pair(uint64_t{3}, uint64_t{2}));
}

TEST(ConstantStructuralLeakageTest, StrictlyRicherThanPartitioning) {
  // Two datasets with the same per-node result groups but different value
  // placements: partitioning leakage is identical, the Constant-scheme
  // mapping distinguishes them.
  Dataset a(Domain{8}, {{1, 4}, {2, 5}});
  Dataset b(Domain{8}, {{1, 5}, {2, 4}});
  const Range r{4, 7};
  auto part_a = ResultPartitioning(a, r, CoverTechnique::kBrc, 3);
  auto part_b = ResultPartitioning(b, r, CoverTechnique::kBrc, 3);
  ASSERT_EQ(part_a.size(), part_b.size());
  for (size_t i = 0; i < part_a.size(); ++i) {
    EXPECT_EQ(std::set<uint64_t>(part_a[i].ids.begin(), part_a[i].ids.end()),
              std::set<uint64_t>(part_b[i].ids.begin(), part_b[i].ids.end()));
  }
  EXPECT_NE(ConstantStructuralLeakage(a, r, CoverTechnique::kBrc, 3)[0]
                .offset_to_id,
            ConstantStructuralLeakage(b, r, CoverTechnique::kBrc, 3)[0]
                .offset_to_id);
}

TEST(SearchPatternTrackerTest, DetectsRepeatedTokens) {
  SearchPatternTracker tracker;
  Bytes t1 = ToBytes("token-1");
  Bytes t2 = ToBytes("token-2");
  Bytes t3 = ToBytes("token-3");
  tracker.Observe(0, {t1, t2});
  tracker.Observe(1, {t3});
  tracker.Observe(2, {t2});
  std::vector<std::pair<size_t, size_t>> pairs = tracker.MatchingPairs();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0], std::make_pair(size_t{0}, size_t{2}));
}

TEST(SearchPatternTrackerTest, NoFalseMatches) {
  SearchPatternTracker tracker;
  tracker.Observe(0, {ToBytes("a")});
  tracker.Observe(1, {ToBytes("b")});
  EXPECT_TRUE(tracker.MatchingPairs().empty());
}

TEST(SearchPatternTrackerTest, RepeatWithinOneQueryIgnored) {
  SearchPatternTracker tracker;
  tracker.Observe(0, {ToBytes("a"), ToBytes("a")});
  EXPECT_TRUE(tracker.MatchingPairs().empty());
}

TEST(SetupLeakageTest, Equality) {
  EXPECT_EQ((SetupLeakage{8, 100}), (SetupLeakage{8, 100}));
  EXPECT_FALSE((SetupLeakage{8, 100}) == (SetupLeakage{8, 101}));
}

}  // namespace
}  // namespace rsse::leakage
