// Edge cases shared by all range-covering techniques (BRC, URC, TDAG,
// dyadic paths): width-1 ranges, ranges touching the domain boundaries,
// and non-power-of-two domain sizes (where the tree is padded but queries
// never cross the pad boundary).

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "cover/brc.h"
#include "cover/dyadic.h"
#include "cover/tdag.h"
#include "cover/urc.h"

namespace rsse {
namespace {

/// Exact disjoint coverage of [r.lo, r.hi] by `cover` over a 2^bits-leaf
/// tree.
void ExpectExactDisjointCover(const std::vector<DyadicNode>& cover,
                              const Range& r, int bits) {
  std::vector<int> hit(size_t{1} << bits, 0);
  for (const DyadicNode& n : cover) {
    ASSERT_LE(n.Hi(), (uint64_t{1} << bits) - 1);
    for (uint64_t v = n.Lo(); v <= n.Hi(); ++v) ++hit[v];
  }
  for (uint64_t v = 0; v < (uint64_t{1} << bits); ++v) {
    EXPECT_EQ(hit[v], r.Contains(v) ? 1 : 0)
        << "value " << v << " range [" << r.lo << "," << r.hi << "] bits "
        << bits;
  }
}

TEST(CoverWidthOneTest, BrcAndUrcAreTheSingleLeaf) {
  for (int bits : {1, 3, 5}) {
    for (uint64_t v = 0; v < (uint64_t{1} << bits); ++v) {
      const Range r{v, v};
      std::vector<DyadicNode> brc = BestRangeCover(r, bits);
      ASSERT_EQ(brc.size(), 1u) << "bits " << bits << " v " << v;
      EXPECT_EQ(brc[0], (DyadicNode{0, v}));
      std::vector<DyadicNode> urc = UniformRangeCover(r, bits);
      ASSERT_EQ(urc.size(), 1u);
      EXPECT_EQ(urc[0], (DyadicNode{0, v}));
    }
  }
}

TEST(CoverWidthOneTest, TdagSingleRangeCoverIsTheLeaf) {
  for (int bits : {1, 3, 5}) {
    Tdag tdag(bits);
    for (uint64_t v = 0; v < tdag.leaf_count(); ++v) {
      TdagNode node = tdag.SingleRangeCover(Range{v, v});
      EXPECT_EQ(node.level, 0);
      EXPECT_EQ(node.start, v);
    }
  }
}

TEST(CoverWidthOneTest, DyadicPathBottomIsTheLeaf) {
  for (int bits : {1, 4, 7}) {
    for (uint64_t v : {uint64_t{0}, (uint64_t{1} << bits) - 1}) {
      std::vector<DyadicNode> path = PathToRoot(v, bits);
      ASSERT_EQ(path.size(), static_cast<size_t>(bits) + 1);
      EXPECT_EQ(path.front(), (DyadicNode{0, v}));
      EXPECT_EQ(path.back(), (DyadicNode{bits, 0}));
      for (const DyadicNode& n : path) EXPECT_TRUE(n.Contains(v));
    }
  }
}

TEST(CoverBoundaryTest, RangesTouchingDomainEdgesCoverExactly) {
  const int bits = 4;
  const uint64_t top = (uint64_t{1} << bits) - 1;
  const std::vector<Range> edges = {
      {0, 0},  {0, 1},   {0, top - 1},   {0, top},
      {1, top}, {top - 1, top}, {top, top}, {1, top - 1},
  };
  for (const Range& r : edges) {
    ExpectExactDisjointCover(BestRangeCover(r, bits), r, bits);
    ExpectExactDisjointCover(UniformRangeCover(r, bits), r, bits);
    Tdag tdag(bits);
    TdagNode src = tdag.SingleRangeCover(r);
    EXPECT_TRUE(src.CoversRange(r))
        << "TDAG SRC for [" << r.lo << "," << r.hi << "]";
    EXPECT_LE(src.Hi(), top);
  }
}

TEST(CoverBoundaryTest, BrcOfTopHalfIsOneNode) {
  const int bits = 5;
  const uint64_t half = uint64_t{1} << (bits - 1);
  std::vector<DyadicNode> cover =
      BestRangeCover(Range{half, 2 * half - 1}, bits);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0], (DyadicNode{bits - 1, 1}));
}

// Non-power-of-two domains: the tree is padded to 2^bits leaves, but the
// scheme layer clips queries to [0, size), so covers are requested for
// ranges ending inside the padded region's lower part. They must stay
// exact and never spill past the requested hi.
TEST(CoverNonPowerOfTwoTest, CoversOfClippedRangesAreExact) {
  for (uint64_t domain_size : {3u, 5u, 11u, 13u}) {
    Domain d{domain_size};
    const int bits = d.Bits();
    ASSERT_GT(d.PaddedSize(), domain_size);  // genuinely non-pow2
    for (uint64_t lo = 0; lo < domain_size; ++lo) {
      for (uint64_t hi = lo; hi < domain_size; ++hi) {
        const Range r{lo, hi};
        ExpectExactDisjointCover(BestRangeCover(r, bits), r, bits);
        ExpectExactDisjointCover(UniformRangeCover(r, bits), r, bits);
      }
    }
  }
}

TEST(CoverNonPowerOfTwoTest, TdagSrcStaysWithinPaddedTree) {
  for (uint64_t domain_size : {3u, 5u, 11u, 13u}) {
    Domain d{domain_size};
    Tdag tdag(d.Bits());
    for (uint64_t lo = 0; lo < domain_size; ++lo) {
      for (uint64_t hi = lo; hi < domain_size; ++hi) {
        TdagNode src = tdag.SingleRangeCover(Range{lo, hi});
        EXPECT_TRUE(src.CoversRange(Range{lo, hi}));
        EXPECT_LE(src.Hi(), d.PaddedSize() - 1);
        // Lemma 1: the SRC node covers at most ~4x the range (padded
        // trees can hit exactly 4x at the boundary).
        EXPECT_LE(src.Size(), 4 * (hi - lo + 1));
      }
    }
  }
}

TEST(CoverNonPowerOfTwoTest, DomainBitsOfNonPowerOfTwoSizes) {
  EXPECT_EQ(Domain{1}.Bits(), 1);
  EXPECT_EQ(Domain{2}.Bits(), 1);
  EXPECT_EQ(Domain{3}.Bits(), 2);
  EXPECT_EQ(Domain{5}.Bits(), 3);
  EXPECT_EQ(Domain{11}.Bits(), 4);
  EXPECT_EQ(Domain{276841}.Bits(), 19);  // the USPS salary domain
}

TEST(CoverWidthOneTest, UrcProfileOfWidthOneIsOneLeaf) {
  for (int bits : {1, 3, 6}) {
    std::vector<int> profile = UrcLevelProfile(1, bits);
    ASSERT_EQ(profile.size(), 1u);
    EXPECT_EQ(profile[0], 0);
  }
}

}  // namespace
}  // namespace rsse
