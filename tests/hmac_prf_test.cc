#include "crypto/hmac_prf.h"

#include <gtest/gtest.h>

#include "common/bytes.h"

namespace rsse::crypto {
namespace {

// RFC 4231 test case 2: key = "Jefe", data = "what do ya want for nothing?".
TEST(HmacTest, Rfc4231Sha256Case2) {
  EXPECT_EQ(
      ToHex(*HmacSha256(ToBytes("Jefe"), ToBytes("what do ya want for nothing?"))),
      "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Sha512Case2) {
  EXPECT_EQ(
      ToHex(*HmacSha512(ToBytes("Jefe"), ToBytes("what do ya want for nothing?"))),
      "164b7a7bfcf819e2e395fbe73b56e0a387bd64222e831fd610270cd7ea250554"
      "9758bf75c05a994a6d034f65f8f0e6fdcaeab1a34d4a6b4b636e070a38bce737");
}

// RFC 4231 test case 1: 20 bytes of 0x0b, data "Hi There".
TEST(HmacTest, Rfc4231Sha512Case1) {
  Bytes key(20, 0x0b);
  EXPECT_EQ(ToHex(*HmacSha512(key, ToBytes("Hi There"))),
            "87aa7cdea5ef619d4ff0b4241a1d6cb02379f4e2ce4ec2787ad0b30545e17cde"
            "daa833b7d6b8a702038b274eaea3f4e4be9d914eeb61f1702e696c203a126854");
}

TEST(HmacTest, OutputSizes) {
  EXPECT_EQ(HmacSha256(ToBytes("k"), ToBytes("m"))->size(), 32u);
  EXPECT_EQ(HmacSha512(ToBytes("k"), ToBytes("m"))->size(), 64u);
}

TEST(PrfTest, MatchesOneShotHmac) {
  Bytes key = ToBytes("prf-key-material");
  Prf prf(key);
  for (const char* msg : {"", "a", "hello world", "0123456789abcdef"}) {
    EXPECT_EQ(prf.Eval(ToBytes(msg)), *HmacSha512(key, ToBytes(msg)))
        << "mismatch for message: " << msg;
  }
}

TEST(PrfTest, TruncationIsPrefix) {
  Prf prf(ToBytes("key"));
  Bytes full = prf.Eval(ToBytes("msg"));
  Bytes trunc = prf.EvalTrunc(ToBytes("msg"), 16);
  ASSERT_EQ(trunc.size(), 16u);
  EXPECT_TRUE(std::equal(trunc.begin(), trunc.end(), full.begin()));
}

TEST(PrfTest, DistinctKeysDistinctOutputs) {
  Prf a(ToBytes("key-a"));
  Prf b(ToBytes("key-b"));
  EXPECT_NE(a.Eval(ToBytes("m")), b.Eval(ToBytes("m")));
}

TEST(PrfTest, DistinctInputsDistinctOutputs) {
  Prf prf(ToBytes("key"));
  EXPECT_NE(prf.Eval(ToBytes("m1")), prf.Eval(ToBytes("m2")));
}

TEST(PrfTest, RepeatedEvaluationIsStable) {
  Prf prf(ToBytes("key"));
  Bytes first = prf.Eval(ToBytes("m"));
  for (int i = 0; i < 10; ++i) EXPECT_EQ(prf.Eval(ToBytes("m")), first);
}

TEST(PrfTest, MoveConstructionPreservesKey) {
  Prf a(ToBytes("key"));
  Bytes expected = a.Eval(ToBytes("m"));
  Prf b = std::move(a);
  EXPECT_EQ(b.Eval(ToBytes("m")), expected);
}

TEST(PrfTest, CreateFactoryYieldsWorkingPrf) {
  Result<Prf> prf = Prf::Create(ToBytes("key"));
  ASSERT_TRUE(prf.ok());
  EXPECT_TRUE(prf->ok());
  EXPECT_EQ(prf->Eval(ToBytes("m")), Prf(ToBytes("key")).Eval(ToBytes("m")));
}

TEST(PrfTest, EvalIntoMatchesEval) {
  Prf prf(ToBytes("prf-key-material"));
  for (const char* msg : {"", "a", "hello world", "0123456789abcdef"}) {
    Bytes expected = prf.Eval(ToBytes(msg));
    uint8_t full[Prf::kMaxOutputBytes];
    Bytes input = ToBytes(msg);
    ASSERT_TRUE(prf.EvalInto(input, ByteSpan(full, sizeof(full))));
    EXPECT_EQ(Bytes(full, full + sizeof(full)), expected) << msg;
    // Truncated outputs are prefixes.
    uint8_t trunc[16];
    ASSERT_TRUE(prf.EvalInto(input, ByteSpan(trunc, sizeof(trunc))));
    EXPECT_TRUE(std::equal(trunc, trunc + sizeof(trunc), expected.begin()));
  }
}

TEST(PrfTest, EvalIntoRepeatedRestartsAreStable) {
  // Exercises the scratch-context restart path (EVP_MAC re-init with a
  // retained key) across many evaluations.
  Prf prf(ToBytes("key"));
  Bytes expected = prf.Eval(ToBytes("m"));
  Bytes input = ToBytes("m");
  uint8_t out[Prf::kMaxOutputBytes];
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(prf.EvalInto(input, ByteSpan(out, sizeof(out))));
    EXPECT_EQ(Bytes(out, out + sizeof(out)), expected);
  }
}

TEST(PrfTest, EvalIntoRejectsOversizedOutput) {
  Prf prf(ToBytes("key"));
  uint8_t out[Prf::kMaxOutputBytes + 1];
  Bytes input = ToBytes("m");
  EXPECT_FALSE(prf.EvalInto(input, ByteSpan(out, sizeof(out))));
}


TEST(PrfTest, EvalCountersIntoMatchesEvalInto) {
  // The fused (and, where available, multi-lane SIMD) counter path must be
  // bit-identical to per-counter EvalInto on the 8-byte big-endian
  // encoding — these are the dictionary labels F(K1, c), pinned by every
  // serialized index. Counts straddle the 4- and 8-lane groupings so both
  // the vector body and the scalar tail are exercised.
  Prf prf(ToBytes("counter-label-key"));
  for (const uint64_t start : {uint64_t{0}, uint64_t{5}, uint64_t{1} << 40}) {
    for (const size_t count : {size_t{1}, size_t{3}, size_t{4}, size_t{7},
                               size_t{8}, size_t{9}, size_t{31}}) {
      std::vector<uint8_t> fused(count * 16);
      ASSERT_TRUE(prf.EvalCountersInto(start, count, ByteSpan(fused), 16));
      for (size_t i = 0; i < count; ++i) {
        uint8_t counter[8];
        const uint64_t c = start + i;
        for (int b = 0; b < 8; ++b) {
          counter[b] = static_cast<uint8_t>(c >> (56 - 8 * b));
        }
        uint8_t expected[16];
        ASSERT_TRUE(prf.EvalInto(ConstByteSpan(counter, 8),
                                 ByteSpan(expected, 16)));
        EXPECT_EQ(std::memcmp(fused.data() + i * 16, expected, 16), 0)
            << "start " << start << " count " << count << " i " << i;
      }
    }
  }
}

TEST(PrfTest, EvalCountersIntoFullWidthOutput) {
  // out_len = 64 returns whole MACs, matching Eval on the encoded counter.
  Prf prf(ToBytes("full-width"));
  std::vector<uint8_t> fused(6 * 64);
  ASSERT_TRUE(prf.EvalCountersInto(100, 6, ByteSpan(fused), 64));
  for (size_t i = 0; i < 6; ++i) {
    Bytes counter;
    AppendUint64(counter, 100 + i);
    Bytes expected = prf.Eval(counter);
    EXPECT_EQ(Bytes(fused.begin() + static_cast<long>(i * 64),
                    fused.begin() + static_cast<long>((i + 1) * 64)),
              expected);
  }
}

TEST(PrfTest, EvalCountersIntoRejectsBadArguments) {
  Prf prf(ToBytes("key"));
  std::vector<uint8_t> out(4 * 16);
  EXPECT_FALSE(prf.EvalCountersInto(0, 4, ByteSpan(out), 65));  // > 64
  EXPECT_FALSE(prf.EvalCountersInto(0, 4, ByteSpan(out), 0));
  EXPECT_FALSE(prf.EvalCountersInto(0, 5, ByteSpan(out), 16));  // short out
}

}  // namespace
}  // namespace rsse::crypto
