// Crash-safety of the server's durable store table: snapshot and WAL
// codecs, torn-tail truncation, epoch filtering of stale WAL records,
// corrupt-snapshot quarantine, and full EmmServer recovery — a server
// restarted from --data-dir must rebuild exactly the store table the old
// process acked, byte for byte of the blobs it persisted.

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/crc32c.h"
#include "common/failpoint.h"
#include "common/mapped_file.h"
#include "server/client.h"
#include "server/persist.h"
#include "server/server.h"
#include "server/wire.h"

namespace rsse::server {
namespace {

/// A fresh empty directory under the test temp root, removed on teardown.
class TempDir {
 public:
  TempDir() {
    std::string tmpl = ::testing::TempDir() + "rsse_persist_XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    EXPECT_NE(mkdtemp(buf.data()), nullptr);
    path_ = buf.data();
  }

  ~TempDir() {
    // Recursive removal without shelling out: the suite only ever writes
    // flat files into the directory.
    DIR* d = opendir(path_.c_str());
    if (d != nullptr) {
      while (dirent* entry = readdir(d)) {
        const std::string name = entry->d_name;
        if (name != "." && name != "..") {
          unlink((path_ + "/" + name).c_str());
        }
      }
      closedir(d);
    }
    rmdir(path_.c_str());
  }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

Bytes Blob(size_t n, uint8_t seed) {
  Bytes b(n);
  for (size_t i = 0; i < n; ++i) b[i] = static_cast<uint8_t>(seed + i * 31);
  return b;
}

Result<Bytes> ReadFile(const std::string& path) {
  FILE* f = fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::Internal("open " + path);
  Bytes out;
  uint8_t chunk[4096];
  size_t n;
  while ((n = fread(chunk, 1, sizeof(chunk), f)) > 0) {
    out.insert(out.end(), chunk, chunk + n);
  }
  fclose(f);
  return out;
}

void WriteFile(const std::string& path, const Bytes& data) {
  FILE* f = fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(fwrite(data.data(), 1, data.size(), f), data.size());
  fclose(f);
}

TEST(WalCodecTest, RoundTripsMultipleRecords) {
  Bytes log;
  StorePersistence::EncodeWalRecord(7, ConstByteSpan(Blob(100, 1)), log);
  StorePersistence::EncodeWalRecord(7, ConstByteSpan(Blob(0, 0)), log);
  StorePersistence::EncodeWalRecord(9, ConstByteSpan(Blob(33, 5)), log);

  std::vector<StorePersistence::WalRecord> records;
  EXPECT_EQ(StorePersistence::DecodeWalRecords(log, records), log.size());
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].epoch, 7u);
  EXPECT_EQ(records[0].payload, Blob(100, 1));
  EXPECT_TRUE(records[1].payload.empty());
  EXPECT_EQ(records[2].epoch, 9u);
  EXPECT_EQ(records[2].payload, Blob(33, 5));
}

TEST(WalCodecTest, TornTailStopsAtLastGoodRecord) {
  Bytes log;
  StorePersistence::EncodeWalRecord(1, ConstByteSpan(Blob(64, 2)), log);
  const size_t good = log.size();
  StorePersistence::EncodeWalRecord(1, ConstByteSpan(Blob(64, 3)), log);
  log.resize(log.size() - 17);  // tear the second record mid-payload

  std::vector<StorePersistence::WalRecord> records;
  EXPECT_EQ(StorePersistence::DecodeWalRecords(log, records), good);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].payload, Blob(64, 2));
}

TEST(WalCodecTest, EveryCorruptedByteIsCaught) {
  // Wire-fuzz matrix for the record decoder: flipping any single byte of
  // a record — length, checksum, epoch, or payload — must stop the decode
  // at the record boundary, never crash, and never yield altered bytes.
  Bytes log;
  StorePersistence::EncodeWalRecord(3, ConstByteSpan(Blob(24, 9)), log);
  for (size_t i = 0; i < log.size(); ++i) {
    Bytes bad = log;
    bad[i] ^= 0x40;
    std::vector<StorePersistence::WalRecord> records;
    const size_t end = StorePersistence::DecodeWalRecords(bad, records);
    if (!records.empty()) {
      // The only way a flip survives is not possible with a sound CRC:
      // any accepted record must carry the original bytes.
      EXPECT_EQ(records[0].payload, Blob(24, 9)) << "flipped byte " << i;
      EXPECT_EQ(end, log.size());
    } else {
      EXPECT_EQ(end, 0u) << "flipped byte " << i;
    }
  }
}

TEST(WalCodecTest, TruncatedPrefixesNeverCrash) {
  Bytes log;
  StorePersistence::EncodeWalRecord(2, ConstByteSpan(Blob(40, 4)), log);
  for (size_t keep = 0; keep < log.size(); ++keep) {
    Bytes prefix(log.begin(), log.begin() + static_cast<long>(keep));
    std::vector<StorePersistence::WalRecord> records;
    EXPECT_EQ(StorePersistence::DecodeWalRecords(prefix, records), 0u);
    EXPECT_TRUE(records.empty());
  }
}

TEST(PersistTest, SnapshotRoundTripsThroughRecovery) {
  TempDir dir;
  const Bytes index = Blob(1000, 11);
  const Bytes gate = Blob(200, 13);
  {
    auto p = StorePersistence::Open(dir.path());
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    ASSERT_TRUE((*p)->PersistSnapshot(0, 1, 0, ConstByteSpan(index),
                                      ConstByteSpan(gate))
                    .ok());
  }
  auto p = StorePersistence::Open(dir.path());
  ASSERT_TRUE(p.ok());
  auto report = (*p)->Recover();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->stores.size(), 1u);
  const auto& store = report->stores[0];
  EXPECT_EQ(store.store_id, 0u);
  EXPECT_TRUE(store.has_snapshot);
  EXPECT_EQ(store.epoch, 1u);
  EXPECT_EQ(store.index_blob, index);
  EXPECT_EQ(store.gate_blob, gate);
  EXPECT_TRUE(store.updates.empty());
  EXPECT_EQ(report->corrupt_snapshots, 0u);
}

TEST(PersistTest, WalReplaysInOrderAndSurvivesReopen) {
  TempDir dir;
  {
    auto p = StorePersistence::Open(dir.path());
    ASSERT_TRUE(p.ok());
    ASSERT_TRUE(
        (*p)->PersistSnapshot(0, 1, 0, ConstByteSpan(Blob(64, 1)), {}).ok());
    ASSERT_TRUE((*p)->AppendUpdate(0, 1, ConstByteSpan(Blob(50, 2))).ok());
    ASSERT_TRUE((*p)->AppendUpdate(0, 1, ConstByteSpan(Blob(60, 3))).ok());
  }
  auto p = StorePersistence::Open(dir.path());
  ASSERT_TRUE(p.ok());
  auto report = (*p)->Recover();
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->stores.size(), 1u);
  ASSERT_EQ(report->stores[0].updates.size(), 2u);
  EXPECT_EQ(report->stores[0].updates[0], Blob(50, 2));
  EXPECT_EQ(report->stores[0].updates[1], Blob(60, 3));
}

TEST(PersistTest, NewSnapshotSupersedesOldWal) {
  // The crash window the epochs close: snapshot renamed, WAL not yet
  // truncated. The old generation's records must not replay on top of the
  // new index.
  TempDir dir;
  auto p = StorePersistence::Open(dir.path());
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(
      (*p)->PersistSnapshot(0, 1, 0, ConstByteSpan(Blob(64, 1)), {}).ok());
  ASSERT_TRUE((*p)->AppendUpdate(0, 1, ConstByteSpan(Blob(50, 2))).ok());
  // Simulate the crash: append a stale-epoch record directly (as if the
  // truncate in PersistSnapshot never ran after a epoch-2 snapshot).
  ASSERT_TRUE(
      (*p)->PersistSnapshot(0, 2, 0, ConstByteSpan(Blob(64, 9)), {}).ok());
  ASSERT_TRUE((*p)->AppendUpdate(0, 1, ConstByteSpan(Blob(50, 3))).ok());

  auto reopened = StorePersistence::Open(dir.path());
  ASSERT_TRUE(reopened.ok());
  auto report = (*reopened)->Recover();
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->stores.size(), 1u);
  EXPECT_EQ(report->stores[0].epoch, 2u);
  EXPECT_EQ(report->stores[0].index_blob, Blob(64, 9));
  EXPECT_TRUE(report->stores[0].updates.empty())
      << "epoch-1 records must not replay onto the epoch-2 snapshot";
  EXPECT_EQ(report->stale_wal_records, 1u);
}

TEST(PersistTest, TornWalTailIsTruncatedOnDisk) {
  TempDir dir;
  const std::string wal = dir.path() + "/store-0.wal";
  Bytes log;
  StorePersistence::EncodeWalRecord(0, ConstByteSpan(Blob(40, 1)), log);
  const size_t good = log.size();
  StorePersistence::EncodeWalRecord(0, ConstByteSpan(Blob(40, 2)), log);
  log.resize(log.size() - 5);
  WriteFile(wal, log);

  auto p = StorePersistence::Open(dir.path());
  ASSERT_TRUE(p.ok());
  auto report = (*p)->Recover();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->wal_bytes_truncated, log.size() - good);
  ASSERT_EQ(report->stores.size(), 1u);
  ASSERT_EQ(report->stores[0].updates.size(), 1u);
  EXPECT_FALSE(report->stores[0].has_snapshot);

  // The tail is gone on disk too: a second recovery reports it clean.
  auto on_disk = ReadFile(wal);
  ASSERT_TRUE(on_disk.ok());
  EXPECT_EQ(on_disk->size(), good);
}

TEST(PersistTest, CorruptSnapshotIsQuarantinedAndSlotRestartsEmpty) {
  TempDir dir;
  {
    auto p = StorePersistence::Open(dir.path());
    ASSERT_TRUE(p.ok());
    ASSERT_TRUE(
        (*p)->PersistSnapshot(3, 1, 0, ConstByteSpan(Blob(500, 7)), {}).ok());
    ASSERT_TRUE((*p)->AppendUpdate(3, 1, ConstByteSpan(Blob(30, 8))).ok());
  }
  // Flip a byte in the middle of the snapshot's blob region.
  const std::string snap = dir.path() + "/store-3.snap";
  auto bytes = ReadFile(snap);
  ASSERT_TRUE(bytes.ok());
  (*bytes)[bytes->size() / 2] ^= 0x01;
  WriteFile(snap, *bytes);

  auto p = StorePersistence::Open(dir.path());
  ASSERT_TRUE(p.ok());
  auto report = (*p)->Recover();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->corrupt_snapshots, 1u);
  EXPECT_TRUE(report->stores.empty())
      << "the WAL applies on top of the lost base and must not replay";
  EXPECT_NE(access((snap + ".corrupt").c_str(), F_OK), -1)
      << "the bad file is set aside for forensics, not deleted";
  EXPECT_EQ(access(snap.c_str(), F_OK), -1);
}

TEST(PersistTest, StrayTmpFilesAreRemoved) {
  TempDir dir;
  WriteFile(dir.path() + "/store-0.snap.tmp", Blob(64, 1));
  auto p = StorePersistence::Open(dir.path());
  ASSERT_TRUE(p.ok());
  auto report = (*p)->Recover();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->stores.empty());
  EXPECT_EQ(access((dir.path() + "/store-0.snap.tmp").c_str(), F_OK), -1);
}

// --------------------------------------------------------------------------
// v2 snapshot container: the mmap-native generation.
// --------------------------------------------------------------------------

TEST(PersistV2Test, SnapshotRoundTripsWithoutLoadingTheIndex) {
  TempDir dir;
  const Bytes index = Blob(10000, 21);
  const Bytes gate = Blob(300, 23);
  {
    auto p = StorePersistence::Open(dir.path());
    ASSERT_TRUE(p.ok());
    ASSERT_TRUE((*p)->PersistSnapshot(0, 3, 1, ConstByteSpan(index),
                                      ConstByteSpan(gate),
                                      SnapshotFormat::kV2)
                    .ok());
  }
  auto p = StorePersistence::Open(dir.path());
  ASSERT_TRUE(p.ok());
  auto report = (*p)->Recover();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->stores.size(), 1u);
  const auto& store = report->stores[0];
  EXPECT_TRUE(store.has_snapshot);
  EXPECT_EQ(store.kind, 1u);
  EXPECT_EQ(store.epoch, 3u);
  EXPECT_EQ(store.format, 2u);
  // O(1) recovery contract: the index is NOT loaded — the caller maps
  // (or reads) [index_offset, index_offset + index_len) itself.
  EXPECT_TRUE(store.index_blob.empty());
  EXPECT_EQ(store.snapshot_path, dir.path() + "/store-0.snap");
  EXPECT_EQ(store.index_offset, 4096u);
  EXPECT_EQ(store.index_len, index.size());
  EXPECT_EQ(store.gate_blob, gate);
  auto on_disk = ReadFileRange(store.snapshot_path, store.index_offset,
                               store.index_len);
  ASSERT_TRUE(on_disk.ok());
  EXPECT_EQ(*on_disk, index);
}

TEST(PersistV2Test, EmptyGateAndIndexRoundTrip) {
  TempDir dir;
  auto p = StorePersistence::Open(dir.path());
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(
      (*p)->PersistSnapshot(0, 1, 0, {}, {}, SnapshotFormat::kV2).ok());
  auto report = (*p)->Recover();
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->stores.size(), 1u);
  EXPECT_EQ(report->stores[0].format, 2u);
  EXPECT_EQ(report->stores[0].index_len, 0u);
  EXPECT_TRUE(report->stores[0].gate_blob.empty());
}

TEST(PersistV2Test, HostileHeaderMatrixQuarantinesCleanly) {
  // Each corruption of the v2 header page (or the container's framing)
  // must quarantine the slot — never crash, never serve a torn base.
  struct Case {
    const char* name;
    void (*corrupt)(Bytes&);
  };
  const Case cases[] = {
      {"flipped magic", [](Bytes& f) { f[0] ^= 0xff; }},
      {"header crc mismatch", [](Bytes& f) { f[9] ^= 0x01; }},  // epoch
      {"crc field itself", [](Bytes& f) { f[53] ^= 0x01; }},
      {"gate crc mismatch", [](Bytes& f) { f.back() ^= 0x01; }},
      {"truncated to header page", [](Bytes& f) { f.resize(4096); }},
      {"truncated mid-index",
       [](Bytes& f) {
         // The guard is always true (the index alone is ~9 KB) but lets
         // the compiler see the new size cannot wrap below zero.
         if (f.size() > 4097) f.resize(f.size() - 4097);
       }},
      {"trailing garbage", [](Bytes& f) { f.resize(f.size() + 512, 0); }},
  };
  for (const Case& c : cases) {
    TempDir dir;
    {
      auto p = StorePersistence::Open(dir.path());
      ASSERT_TRUE(p.ok());
      ASSERT_TRUE((*p)->PersistSnapshot(0, 1, 0, ConstByteSpan(Blob(9000, 5)),
                                        ConstByteSpan(Blob(100, 6)),
                                        SnapshotFormat::kV2)
                      .ok());
    }
    const std::string snap = dir.path() + "/store-0.snap";
    auto bytes = ReadFile(snap);
    ASSERT_TRUE(bytes.ok());
    c.corrupt(*bytes);
    WriteFile(snap, *bytes);
    auto p = StorePersistence::Open(dir.path());
    ASSERT_TRUE(p.ok());
    auto report = (*p)->Recover();
    ASSERT_TRUE(report.ok()) << c.name;
    EXPECT_EQ(report->corrupt_snapshots, 1u) << c.name;
    EXPECT_TRUE(report->stores.empty()) << c.name;
    EXPECT_NE(access((snap + ".corrupt").c_str(), F_OK), -1) << c.name;
  }
}

TEST(PersistV2Test, TruncatedBelowOnePageIsQuarantined) {
  TempDir dir;
  {
    auto p = StorePersistence::Open(dir.path());
    ASSERT_TRUE(p.ok());
    ASSERT_TRUE((*p)->PersistSnapshot(0, 1, 0, ConstByteSpan(Blob(500, 5)),
                                      {}, SnapshotFormat::kV2)
                    .ok());
  }
  const std::string snap = dir.path() + "/store-0.snap";
  auto bytes = ReadFile(snap);
  ASSERT_TRUE(bytes.ok());
  bytes->resize(100);  // shorter than the header page, longer than a magic
  WriteFile(snap, *bytes);
  auto p = StorePersistence::Open(dir.path());
  ASSERT_TRUE(p.ok());
  auto report = (*p)->Recover();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->corrupt_snapshots, 1u);
  EXPECT_TRUE(report->stores.empty());
}

TEST(PersistV2Test, EpochFilteringWorksAcrossFormats) {
  // A v2 snapshot supersedes a v1-era WAL exactly like a v1 snapshot
  // would: epoch tags are format-independent.
  TempDir dir;
  auto p = StorePersistence::Open(dir.path());
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(
      (*p)->PersistSnapshot(0, 1, 0, ConstByteSpan(Blob(64, 1)), {}).ok());
  ASSERT_TRUE((*p)->AppendUpdate(0, 1, ConstByteSpan(Blob(50, 2))).ok());
  ASSERT_TRUE((*p)->PersistSnapshot(0, 2, 0, ConstByteSpan(Blob(2000, 9)),
                                    {}, SnapshotFormat::kV2)
                  .ok());
  ASSERT_TRUE((*p)->AppendUpdate(0, 1, ConstByteSpan(Blob(50, 3))).ok());
  auto reopened = StorePersistence::Open(dir.path());
  ASSERT_TRUE(reopened.ok());
  auto report = (*reopened)->Recover();
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->stores.size(), 1u);
  EXPECT_EQ(report->stores[0].epoch, 2u);
  EXPECT_EQ(report->stores[0].format, 2u);
  EXPECT_EQ(report->stores[0].index_len, 2000u);
  EXPECT_TRUE(report->stores[0].updates.empty());
  EXPECT_EQ(report->stale_wal_records, 1u);
}

TEST(PersistTest, InjectedTornSnapshotWriteLeavesOldSnapshotIntact) {
  if (!failpoint::kCompiledIn) {
    GTEST_SKIP() << "build with -DRSSE_FAILPOINTS=ON";
  }
  TempDir dir;
  auto p = StorePersistence::Open(dir.path());
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(
      (*p)->PersistSnapshot(0, 1, 0, ConstByteSpan(Blob(128, 1)), {}).ok());

  failpoint::Set("persist_snapshot_write", "torn*1");
  EXPECT_FALSE(
      (*p)->PersistSnapshot(0, 2, 0, ConstByteSpan(Blob(128, 2)), {}).ok());
  failpoint::ClearAll();

  auto reopened = StorePersistence::Open(dir.path());
  ASSERT_TRUE(reopened.ok());
  auto report = (*reopened)->Recover();
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->stores.size(), 1u);
  EXPECT_EQ(report->stores[0].epoch, 1u);
  EXPECT_EQ(report->stores[0].index_blob, Blob(128, 1))
      << "a failed snapshot write must leave the previous epoch durable";
}

TEST(PersistTest, InjectedTornWalAppendRollsBackBeforeLaterAppends) {
  if (!failpoint::kCompiledIn) {
    GTEST_SKIP() << "build with -DRSSE_FAILPOINTS=ON";
  }
  TempDir dir;
  auto p = StorePersistence::Open(dir.path());
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE((*p)->AppendUpdate(0, 0, ConstByteSpan(Blob(80, 1))).ok());
  failpoint::Set("persist_wal_append", "torn*1");
  EXPECT_FALSE((*p)->AppendUpdate(0, 0, ConstByteSpan(Blob(80, 2))).ok());
  failpoint::ClearAll();
  // The torn record must be rolled back at append time: recovery stops at
  // the first bad record, so an acked append landing after leftover
  // garbage would be silently dropped.
  ASSERT_TRUE((*p)->AppendUpdate(0, 0, ConstByteSpan(Blob(80, 3))).ok());

  auto reopened = StorePersistence::Open(dir.path());
  ASSERT_TRUE(reopened.ok());
  auto report = (*reopened)->Recover();
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->stores.size(), 1u);
  ASSERT_EQ(report->stores[0].updates.size(), 2u);
  EXPECT_EQ(report->stores[0].updates[0], Blob(80, 1));
  EXPECT_EQ(report->stores[0].updates[1], Blob(80, 3))
      << "the acked append after the failed one must survive recovery";
  EXPECT_EQ(report->wal_bytes_truncated, 0u)
      << "the torn record must already be gone from disk";
}

TEST(PersistTest, InjectedWalFsyncFailureRollsBackTheRecord) {
  if (!failpoint::kCompiledIn) {
    GTEST_SKIP() << "build with -DRSSE_FAILPOINTS=ON";
  }
  // Unlike a torn write, a failed fsync leaves a fully-written record in
  // the file; replaying it would apply a nacked batch.
  TempDir dir;
  auto p = StorePersistence::Open(dir.path());
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE((*p)->AppendUpdate(0, 0, ConstByteSpan(Blob(80, 1))).ok());
  failpoint::Set("persist_wal_fsync", "error*1");
  EXPECT_FALSE((*p)->AppendUpdate(0, 0, ConstByteSpan(Blob(80, 2))).ok());
  failpoint::ClearAll();
  ASSERT_TRUE((*p)->AppendUpdate(0, 0, ConstByteSpan(Blob(80, 3))).ok());

  auto reopened = StorePersistence::Open(dir.path());
  ASSERT_TRUE(reopened.ok());
  auto report = (*reopened)->Recover();
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->stores.size(), 1u);
  ASSERT_EQ(report->stores[0].updates.size(), 2u);
  EXPECT_EQ(report->stores[0].updates[0], Blob(80, 1));
  EXPECT_EQ(report->stores[0].updates[1], Blob(80, 3))
      << "the nacked batch's record must not replay";
}

TEST(PersistTest, UnrollbackableTornAppendPoisonsTheSlot) {
  if (!failpoint::kCompiledIn) {
    GTEST_SKIP() << "build with -DRSSE_FAILPOINTS=ON";
  }
  TempDir dir;
  auto p = StorePersistence::Open(dir.path());
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE((*p)->AppendUpdate(0, 0, ConstByteSpan(Blob(80, 1))).ok());
  failpoint::Set("persist_wal_append", "torn*1");
  failpoint::Set("persist_wal_rollback", "error*1");
  EXPECT_FALSE((*p)->AppendUpdate(0, 0, ConstByteSpan(Blob(80, 2))).ok());
  failpoint::ClearAll();
  // The torn record could not be removed, so the slot must refuse further
  // appends — acking one would park it behind the garbage.
  EXPECT_FALSE((*p)->AppendUpdate(0, 0, ConstByteSpan(Blob(80, 3))).ok());
  // A clean snapshot truncates the log and re-enables appends.
  ASSERT_TRUE(
      (*p)->PersistSnapshot(0, 1, 0, ConstByteSpan(Blob(64, 4)), {}).ok());
  ASSERT_TRUE((*p)->AppendUpdate(0, 1, ConstByteSpan(Blob(80, 5))).ok());

  auto reopened = StorePersistence::Open(dir.path());
  ASSERT_TRUE(reopened.ok());
  auto report = (*reopened)->Recover();
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->stores.size(), 1u);
  EXPECT_EQ(report->stores[0].index_blob, Blob(64, 4));
  ASSERT_EQ(report->stores[0].updates.size(), 1u);
  EXPECT_EQ(report->stores[0].updates[0], Blob(80, 5));
}

TEST(PersistTest, DirFsyncFailureAfterRenameStillCommitsTheSnapshot) {
  if (!failpoint::kCompiledIn) {
    GTEST_SKIP() << "build with -DRSSE_FAILPOINTS=ON";
  }
  // The rename is the commit point: a recovery loads the new snapshot, so
  // nacking the Setup would leave the caller acking updates under an
  // epoch recovery skips as stale.
  TempDir dir;
  auto p = StorePersistence::Open(dir.path());
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(
      (*p)->PersistSnapshot(0, 1, 0, ConstByteSpan(Blob(64, 1)), {}).ok());
  failpoint::Set("persist_dir_fsync", "error*1");
  EXPECT_TRUE(
      (*p)->PersistSnapshot(0, 2, 0, ConstByteSpan(Blob(64, 2)), {}).ok());
  failpoint::ClearAll();
  // Which snapshot a crash would resurrect is ambiguous until the next
  // clean snapshot, so no update may be acked under either epoch.
  EXPECT_FALSE((*p)->AppendUpdate(0, 2, ConstByteSpan(Blob(40, 3))).ok());
  ASSERT_TRUE(
      (*p)->PersistSnapshot(0, 3, 0, ConstByteSpan(Blob(64, 4)), {}).ok());
  ASSERT_TRUE((*p)->AppendUpdate(0, 3, ConstByteSpan(Blob(40, 5))).ok());

  auto reopened = StorePersistence::Open(dir.path());
  ASSERT_TRUE(reopened.ok());
  auto report = (*reopened)->Recover();
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->stores.size(), 1u);
  EXPECT_EQ(report->stores[0].epoch, 3u);
  EXPECT_EQ(report->stores[0].index_blob, Blob(64, 4));
  ASSERT_EQ(report->stores[0].updates.size(), 1u);
  EXPECT_EQ(report->stores[0].updates[0], Blob(40, 5));
}

TEST(ServerRecoveryTest, UpdateBuiltStoreSurvivesRestart) {
  // An update-built dictionary (WAL only, no snapshot) must come back:
  // kill the first server after acked updates, boot a second from the
  // same directory, and read the store stats.
  TempDir dir;
  ServerOptions options;
  options.port = 0;
  options.data_dir = dir.path();
  options.shards = 2;

  std::vector<std::pair<Label, Bytes>> entries;
  Label label;
  label.fill(0x21);
  entries.emplace_back(label, Bytes(32, 0x05));
  Label label2;
  label2.fill(0x22);
  entries.emplace_back(label2, Bytes(32, 0x06));

  {
    EmmServer server(options);
    ASSERT_TRUE(server.Listen().ok());
    std::thread serve([&server] { EXPECT_TRUE(server.Serve().ok()); });
    EmmClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
    auto resp = client.Update(entries);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_EQ(resp->entries, 2u);
    server.Shutdown();
    serve.join();
  }

  EmmServer restarted(options);
  ASSERT_TRUE(restarted.Listen().ok());
  EXPECT_EQ(restarted.recovery_stats().stores_recovered, 1u);
  EXPECT_EQ(restarted.recovery_stats().wal_records_applied, 1u);
  std::thread serve([&restarted] { EXPECT_TRUE(restarted.Serve().ok()); });
  EmmClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", restarted.port()).ok());
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->entries, 2u);
  restarted.Shutdown();
  serve.join();
}

TEST(ServerRecoveryTest, UndeserializableSnapshotIsQuarantined) {
  // A snapshot whose checksum holds but whose blob refuses to deserialize
  // must be set aside exactly like a checksum failure: left in place it
  // would re-fail and re-count on every boot.
  TempDir dir;
  {
    auto p = StorePersistence::Open(dir.path());
    ASSERT_TRUE(p.ok());
    ASSERT_TRUE((*p)->PersistSnapshot(
                        0, 1, static_cast<uint8_t>(rsse::StoreKind::kEmm),
                        ConstByteSpan(Blob(100, 7)), {})
                    .ok());
    ASSERT_TRUE((*p)->AppendUpdate(0, 1, ConstByteSpan(Blob(30, 8))).ok());
  }
  ServerOptions options;
  options.data_dir = dir.path();
  {
    EmmServer server(options);
    ASSERT_TRUE(server.Listen().ok());
    EXPECT_EQ(server.recovery_stats().stores_recovered, 0u);
    EXPECT_EQ(server.recovery_stats().corrupt_snapshots_dropped, 1u);
  }
  const std::string snap = dir.path() + "/store-0.snap";
  EXPECT_EQ(access(snap.c_str(), F_OK), -1);
  EXPECT_NE(access((snap + ".corrupt").c_str(), F_OK), -1)
      << "the bad file is set aside for forensics, not deleted";
  auto wal = ReadFile(dir.path() + "/store-0.wal");
  ASSERT_TRUE(wal.ok());
  EXPECT_TRUE(wal->empty())
      << "the WAL applied on top of the lost base and must not replay";

  // The second boot starts clean instead of re-counting the same file.
  EmmServer second(options);
  ASSERT_TRUE(second.Listen().ok());
  EXPECT_EQ(second.recovery_stats().corrupt_snapshots_dropped, 0u);
}

}  // namespace
}  // namespace rsse::server
