#include "cover/dyadic.h"

#include <set>

#include <gtest/gtest.h>

namespace rsse {
namespace {

TEST(DyadicNodeTest, LeafCoversSingleValue) {
  DyadicNode n{0, 5};
  EXPECT_EQ(n.Lo(), 5u);
  EXPECT_EQ(n.Hi(), 5u);
  EXPECT_EQ(n.Size(), 1u);
  EXPECT_TRUE(n.IsLeaf());
}

TEST(DyadicNodeTest, InnerNodeRange) {
  // N4,7 in the paper's Figure 1: level 2, index 1.
  DyadicNode n{2, 1};
  EXPECT_EQ(n.Lo(), 4u);
  EXPECT_EQ(n.Hi(), 7u);
  EXPECT_EQ(n.Size(), 4u);
  EXPECT_FALSE(n.IsLeaf());
  EXPECT_TRUE(n.Contains(5));
  EXPECT_FALSE(n.Contains(8));
}

TEST(DyadicNodeTest, ParentChildAlgebra) {
  DyadicNode n{1, 3};  // covers [6,7]
  EXPECT_EQ(n.Parent(), (DyadicNode{2, 1}));
  EXPECT_EQ(n.LeftChild(), (DyadicNode{0, 6}));
  EXPECT_EQ(n.RightChild(), (DyadicNode{0, 7}));
  EXPECT_EQ(n.LeftChild().Parent(), n);
  EXPECT_EQ(n.RightChild().Parent(), n);
}

TEST(DyadicNodeTest, ChildrenPartitionParent) {
  for (int level = 1; level <= 4; ++level) {
    for (uint64_t index = 0; index < 4; ++index) {
      DyadicNode n{level, index};
      EXPECT_EQ(n.LeftChild().Lo(), n.Lo());
      EXPECT_EQ(n.RightChild().Hi(), n.Hi());
      EXPECT_EQ(n.LeftChild().Hi() + 1, n.RightChild().Lo());
    }
  }
}

TEST(DyadicNodeTest, KeywordEncodingsUnique) {
  std::set<std::string> keywords;
  int count = 0;
  for (int level = 0; level <= 4; ++level) {
    for (uint64_t index = 0; index < (uint64_t{1} << (4 - level)); ++index) {
      keywords.insert(ToHex(DyadicNode{level, index}.EncodeKeyword()));
      ++count;
    }
  }
  EXPECT_EQ(static_cast<int>(keywords.size()), count);
}

TEST(PathToRootTest, PathLengthAndMembership) {
  const int bits = 3;
  for (uint64_t v = 0; v < 8; ++v) {
    std::vector<DyadicNode> path = PathToRoot(v, bits);
    ASSERT_EQ(path.size(), 4u);
    for (const DyadicNode& n : path) {
      EXPECT_TRUE(n.Contains(v));
    }
    EXPECT_EQ(path.front(), (DyadicNode{0, v}));  // leaf
    EXPECT_EQ(path.back(), (DyadicNode{bits, 0}));  // root
  }
}

TEST(PathToRootTest, PaperExampleValue3) {
  // d.a = 3 in Figure 1 is associated with N0,7, N0,3, N2,3 and N3.
  std::vector<DyadicNode> path = PathToRoot(3, 3);
  EXPECT_EQ(path[0], (DyadicNode{0, 3}));  // N3
  EXPECT_EQ(path[1], (DyadicNode{1, 1}));  // N2,3
  EXPECT_EQ(path[2], (DyadicNode{2, 0}));  // N0,3
  EXPECT_EQ(path[3], (DyadicNode{3, 0}));  // N0,7
}

TEST(DyadicAncestorTest, MatchesPath) {
  for (uint64_t v = 0; v < 16; ++v) {
    std::vector<DyadicNode> path = PathToRoot(v, 4);
    for (int level = 0; level <= 4; ++level) {
      EXPECT_EQ(DyadicAncestor(v, level), path[static_cast<size_t>(level)]);
    }
  }
}

}  // namespace
}  // namespace rsse
